"""Unit + property tests for the dynamic CPU-side store (paper Sec. V-A)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import BatchConflictError, DynamicGraph, StaticGraph, UpdateBatch
from repro.graphs.dynamic_graph import merge_runs_reference
from repro.graphs.generators import erdos_renyi
from repro.graphs.stream import derive_stream


def base_graph():
    # path 0-1-2-3 plus chord 0-2
    return StaticGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 2)], np.array([0, 1, 0, 1]))


class TestInsertions:
    def test_insert_appends_to_delta(self):
        dg = DynamicGraph(base_graph())
        dg.apply_batch(UpdateBatch([(0, 3)], [1]))
        assert dg.delta_neighbors(0).tolist() == [3]
        assert dg.delta_neighbors(3).tolist() == [0]
        assert dg.neighbors_old(0).tolist() == [1, 2]
        base, delta = dg.neighbors_new_parts(0)
        assert base.tolist() == [1, 2] and delta.tolist() == [3]
        assert dg.neighbors_new(0).tolist() == [1, 2, 3]

    def test_delta_run_sorted(self):
        dg = DynamicGraph(StaticGraph.empty(6))
        dg.apply_batch(UpdateBatch([(0, 5), (0, 2), (0, 4)], [1, 1, 1]))
        assert dg.delta_neighbors(0).tolist() == [2, 4, 5]

    def test_edge_count_updated(self):
        dg = DynamicGraph(base_graph())
        dg.apply_batch(UpdateBatch([(0, 3), (1, 3)], [1, 1]))
        assert dg.num_edges == 6

    def test_new_vertices_grow_store(self):
        dg = DynamicGraph(base_graph())
        dg.apply_batch(UpdateBatch([(2, 6)], [1], new_vertex_labels={6: 7, 5: 3}))
        assert dg.num_vertices == 7
        assert dg.label(6) == 7
        assert dg.label(5) == 3
        assert dg.label(4) == 0  # implicit new vertex gets default label
        assert dg.neighbors_new(6).tolist() == [2]
        assert dg.host_address.shape[0] == 7
        assert dg.device_address.shape[0] == 7

    def test_amortized_doubling(self):
        dg = DynamicGraph(StaticGraph.empty(2))
        n = 64
        for i in range(n):
            dg.apply_batch(UpdateBatch([(0, i + 2)], [1], new_vertex_labels={}))
            dg.reorganize()
        # O(log n) reallocations for vertex 0, not O(n)
        assert dg.realloc_count <= 4 * int(np.log2(n) + 2)


class TestDeletions:
    def test_delete_marks_negative_in_base(self):
        dg = DynamicGraph(base_graph())
        dg.apply_batch(UpdateBatch([(0, 2)], [-1]))
        # N still sees the deleted edge; N' does not
        assert dg.neighbors_old(0).tolist() == [1, 2]
        base, delta = dg.neighbors_new_parts(0)
        assert base.tolist() == [1] and delta.size == 0
        assert not dg.has_edge_new(0, 2)
        assert dg.has_edge_new(0, 1)

    def test_delete_vertex_zero_neighbor(self):
        # the -(v+1) encoding must represent deletion of neighbor 0
        dg = DynamicGraph(base_graph())
        dg.apply_batch(UpdateBatch([(0, 1)], [-1]))
        assert dg.neighbors_old(1).tolist() == [0, 2]
        base, _ = dg.neighbors_new_parts(1)
        assert base.tolist() == [2]

    def test_delete_missing_edge_rejected(self):
        dg = DynamicGraph(base_graph())
        with pytest.raises(ValueError):
            dg.apply_batch(UpdateBatch([(1, 3)], [-1]))

    def test_degrees_old_new(self):
        dg = DynamicGraph(base_graph())
        dg.apply_batch(UpdateBatch([(0, 2), (0, 3)], [-1, 1]))
        assert dg.degree_old(0) == 2
        assert dg.degree_new(0) == 2  # -1 +1
        assert dg.degree_old(3) == 1
        assert dg.degree_new(3) == 2


class TestReorganize:
    def test_reorganize_restores_sorted_invariant(self):
        dg = DynamicGraph(base_graph())
        dg.apply_batch(UpdateBatch([(0, 2), (0, 3)], [-1, 1]))
        snap = dg.snapshot()
        stats = dg.reorganize()
        dg.check_invariants()
        assert dg.snapshot() == snap
        assert stats.lists_touched == 3  # vertices 0, 2, 3 (vertex 0 touched twice)
        assert stats.deletions_dropped == 2  # both directions of (0,2)
        assert stats.insertions_merged == 2

    def test_batch_lifecycle_enforced(self):
        dg = DynamicGraph(base_graph())
        with pytest.raises(ValueError):
            dg.reorganize()
        dg.apply_batch(UpdateBatch([(0, 3)], [1]))
        with pytest.raises(ValueError):
            dg.apply_batch(UpdateBatch([(1, 3)], [1]))
        dg.reorganize()
        dg.apply_batch(UpdateBatch([(1, 3)], [1]))
        dg.reorganize()
        assert dg.num_edges == 6

    def test_snapshot_old_requires_open_batch(self):
        dg = DynamicGraph(base_graph())
        with pytest.raises(ValueError):
            dg.snapshot_old()


class TestConflictHardening:
    """Regression tests for the three real-world stream crashes/corruptions:
    same-batch insert+delete, duplicate insert, double delete."""

    def test_same_batch_insert_then_delete_nets_away(self):
        # regression: this batch used to crash _mark_deleted (the inserted
        # edge lives in the unsorted ΔN run, not the sorted base run)
        dg = DynamicGraph(base_graph())
        eff = dg.apply_batch(UpdateBatch([(0, 3), (0, 3)], [1, -1]), mode="coalesce")
        assert len(eff) == 0
        assert dg.num_edges == 4
        assert dg.snapshot() == base_graph()
        dg.reorganize()
        dg.check_invariants()
        assert dg.snapshot() == base_graph()

    def test_delete_out_of_delta_run_directly(self):
        # white-box: the ΔN-run delete path itself (an effective batch can
        # legitimately delete an edge a previous batch left in ΔN)
        dg = DynamicGraph(base_graph())
        dg.apply_batch(UpdateBatch([(0, 3), (1, 3)], [1, 1]))
        dg._mark_deleted(0, 3)
        dg._mark_deleted(3, 0)
        dg._num_edges -= 1
        assert dg.neighbors_new(0).tolist() == [1, 2]
        assert dg.neighbors_new(3).tolist() == [1, 2]
        dg.reorganize()
        dg.check_invariants()
        assert dg.snapshot() == base_graph().with_edges(np.array([[1, 3]]))

    def test_duplicate_insert_is_idempotent_under_coalesce(self):
        dg = DynamicGraph(base_graph())
        eff = dg.apply_batch(UpdateBatch([(0, 1), (1, 3)], [1, 1]), mode="coalesce")
        assert eff.edges.tolist() == [[1, 3]]
        assert dg.num_edges == 5  # exact: the duplicate did not double-count
        assert dg.neighbors_new(0).tolist() == [1, 2]  # no duplicate entry
        dg.reorganize()
        dg.check_invariants()

    def test_duplicate_insert_rejected_under_strict(self):
        dg = DynamicGraph(base_graph())
        with pytest.raises(BatchConflictError):
            dg.apply_batch(UpdateBatch([(0, 1)], [1]), mode="strict")
        # store untouched and still settled: the next batch applies cleanly
        assert dg.num_edges == 4
        dg.apply_batch(UpdateBatch([(1, 3)], [1]), mode="strict")
        dg.reorganize()
        dg.check_invariants()

    def test_double_delete_deduped_under_coalesce(self):
        # regression: the second delete of (0, 2) used to crash on the
        # already-marked base entry
        dg = DynamicGraph(base_graph())
        eff = dg.apply_batch(UpdateBatch([(0, 2), (2, 0)], [-1, -1]), mode="coalesce")
        assert len(eff) == 1
        assert dg.num_edges == 3
        dg.reorganize()
        dg.check_invariants()
        assert dg.snapshot() == base_graph().without_edges(np.array([[0, 2]]))

    def test_double_delete_diagnosed_under_strict(self):
        dg = DynamicGraph(base_graph())
        with pytest.raises(BatchConflictError, match="updated more than once"):
            dg.apply_batch(UpdateBatch([(0, 2), (0, 2)], [-1, -1]), mode="strict")
        assert dg.num_edges == 4

    def test_ignore_mode_keeps_first_occurrence(self):
        dg = DynamicGraph(base_graph())
        eff = dg.apply_batch(UpdateBatch([(0, 2), (0, 2)], [-1, 1]), mode="ignore")
        assert eff.signs.tolist() == [-1]
        assert dg.num_edges == 3
        dg.reorganize()
        dg.check_invariants()

    def test_last_canonical_report_exposed(self):
        dg = DynamicGraph(base_graph())
        dg.apply_batch(UpdateBatch([(0, 1), (1, 3)], [1, 1]), mode="coalesce")
        rep = dg.last_canonical_report
        assert rep is not None
        assert rep.duplicate_inserts == 1 and rep.new_inserts == 1


class TestVectorizedMerge:
    def test_merge_matches_scalar_reference(self):
        from repro.utils import merge_sorted

        rng = np.random.default_rng(0)
        for _ in range(50):
            pool = rng.choice(200, size=int(rng.integers(0, 40)), replace=False)
            split = int(rng.integers(0, pool.size + 1))
            kept = np.sort(pool[:split]).astype(np.int64)
            delta = np.sort(pool[split:]).astype(np.int64)
            assert merge_sorted(kept, delta).tolist() == \
                merge_runs_reference(kept, delta).tolist()


class TestSnapshots:
    def test_snapshot_old_equals_initial(self):
        g = erdos_renyi(60, 4.0, seed=7)
        g0, batches = derive_stream(g, update_fraction=0.3, batch_size=16, seed=7)
        dg = DynamicGraph(g0)
        dg.apply_batch(batches[0])
        assert dg.snapshot_old() == g0

    def test_replay_stream_matches_incremental_application(self):
        g = erdos_renyi(60, 4.0, seed=11)
        g0, batches = derive_stream(g, update_fraction=0.4, batch_size=8, seed=11)
        dg = DynamicGraph(g0)
        expected = g0
        for batch in batches:
            expected = expected.with_edges(batch.insert_edges()).without_edges(batch.delete_edges())
            dg.apply_batch(batch)
            assert dg.snapshot() == expected
            dg.reorganize()
            dg.check_invariants()
            assert dg.snapshot() == expected
            assert dg.num_edges == expected.num_edges


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_random_batches_roundtrip(seed):
    """For random graphs and random signed batches, snapshot(old/new) always
    matches independent edge-set arithmetic and reorganize() is a no-op on
    the logical graph."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 25))
    g = erdos_renyi(n, 3.0, seed=int(rng.integers(0, 2**31)))
    dg = DynamicGraph(g)
    current = g
    for _ in range(3):
        edges = current.edge_array()
        dels = []
        if edges.shape[0]:
            k = int(rng.integers(0, min(4, edges.shape[0]) + 1))
            if k:
                dels = edges[rng.choice(edges.shape[0], size=k, replace=False)].tolist()
        ins = []
        for _ in range(int(rng.integers(0, 4))):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if u != v and not current.has_edge(u, v):
                if (min(u, v), max(u, v)) not in {tuple(sorted(e)) for e in ins}:
                    ins.append((u, v))
        updates = [(e, -1) for e in dels] + [(e, 1) for e in ins]
        if not updates:
            continue
        batch = UpdateBatch([e for e, _ in updates], [s for _, s in updates])
        dg.apply_batch(batch)
        assert dg.snapshot_old() == current
        current = current.without_edges(np.array(dels).reshape(-1, 2)).with_edges(
            np.array(ins).reshape(-1, 2)
        )
        assert dg.snapshot() == current
        dg.reorganize()
        dg.check_invariants()
        assert dg.snapshot() == current
