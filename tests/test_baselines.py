"""Tests for the baseline systems (paper Sec. VI-A).

Key invariant: every system returns the *same* ΔM for the same batch — they
differ only in data movement.  Plus the qualitative cost relationships the
paper reports: UM ≫ ZC, VSGM copy-bound and capacity-limited, CPU slower
than GPU variants on compute-heavy batches.
"""

import numpy as np
import pytest

from repro.core.baselines import (
    SYSTEM_NAMES,
    VsgmCapacityError,
    make_system,
)
from repro.core.reference import count_embeddings
from repro.graphs.generators import erdos_renyi, powerlaw_graph
from repro.graphs.stream import derive_stream
from repro.gpu import DeviceConfig, default_device
from repro.query import QueryGraph

TRIANGLE = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")
TAILED = QueryGraph(4, [(0, 1), (1, 2), (0, 2), (2, 3)], [0, 0, 1, 1], name="tailed")


def small_case(seed=1):
    g = erdos_renyi(50, 5.0, num_labels=2, seed=seed)
    return derive_stream(g, update_fraction=0.4, batch_size=16, seed=seed)


class TestAgreement:
    @pytest.mark.parametrize("name", ["ZC", "UM", "Naive", "VSGM", "CPU"])
    def test_all_systems_match_gcsm_and_oracle(self, name):
        g0, batches = small_case()
        gcsm = make_system("GCSM", g0, TAILED, seed=3)
        other = make_system(name, g0, TAILED, seed=3)
        prev = count_embeddings(g0, TAILED)
        for batch in batches[:3]:
            a = gcsm.process_batch(batch)
            b = other.process_batch(batch)
            now = count_embeddings(gcsm.snapshot(), TAILED)
            assert a.delta_count == b.delta_count == now - prev
            prev = now

    def test_factory_rejects_unknown(self):
        g0, _ = small_case()
        with pytest.raises(ValueError):
            make_system("FPGA", g0, TRIANGLE)

    def test_system_names_registry(self):
        assert set(SYSTEM_NAMES) == {
            "GCSM", "Pipelined", "ZC", "UM", "Naive", "VSGM", "CPU",
        }


class TestCostShape:
    def big_case(self):
        g = powerlaw_graph(4000, 10.0, max_degree=120, num_labels=2, seed=5)
        return derive_stream(g, num_updates=128, batch_size=128, seed=5)

    def test_um_much_slower_than_zc(self):
        g0, batches = self.big_case()
        zc = make_system("ZC", g0, TRIANGLE).process_batch(batches[0])
        g0, batches = self.big_case()
        um = make_system("UM", g0, TRIANGLE).process_batch(batches[0])
        assert um.breakdown.total_ns > 10 * zc.breakdown.total_ns

    def test_gcsm_faster_than_zc(self):
        g0, batches = self.big_case()
        zc = make_system("ZC", g0, TRIANGLE).process_batch(batches[0])
        g0, batches = self.big_case()
        gcsm = make_system("GCSM", g0, TRIANGLE, seed=6).process_batch(batches[0])
        assert gcsm.breakdown.total_ns < zc.breakdown.total_ns
        assert gcsm.cpu_access_bytes < zc.cpu_access_bytes

    def test_cpu_has_no_pcie_traffic(self):
        g0, batches = self.big_case()
        cpu = make_system("CPU", g0, TRIANGLE).process_batch(batches[0])
        assert cpu.cpu_access_bytes == 0
        from repro.gpu import Channel

        assert cpu.match_counters.bytes_by_channel[Channel.CPU_DRAM] > 0

    def test_vsgm_copy_dominated(self):
        """Fig. 13: VSGM's match time ~ GCSM's, but its DC time dominates."""
        g0, batches = self.big_case()
        vsgm = make_system("VSGM", g0, TRIANGLE).process_batch(batches[0])
        assert vsgm.breakdown.pack_ns > vsgm.breakdown.match_ns
        # the kernel itself runs entirely from device memory
        assert vsgm.cpu_access_bytes == 0

    def test_naive_uses_restricted_budget(self):
        from repro.core.baselines import NAIVE_CACHE_BUDGET_BYTES

        g0, batches = self.big_case()
        naive = make_system("Naive", g0, TRIANGLE, seed=7)
        r = naive.process_batch(batches[0])
        assert r.cache_bytes <= NAIVE_CACHE_BUDGET_BYTES + 64
        assert r.estimation is None


class TestVsgmCapacity:
    def test_capacity_error_on_big_khop(self):
        g = powerlaw_graph(4000, 12.0, max_degree=150, num_labels=1, seed=8)
        g0, batches = derive_stream(g, num_updates=256, batch_size=256, seed=8)
        device = DeviceConfig(
            global_memory_bytes=20_000, kernel_reserve_bytes=10_000,
            cache_buffer_bytes=10_000,
        )
        vsgm = make_system("VSGM", g0, TRIANGLE, device=device)
        with pytest.raises(VsgmCapacityError):
            vsgm.process_batch(batches[0])
        # the store was left consistent (reorganized) despite the failure
        assert not vsgm.graph.batch_open

    def test_small_batch_fits(self):
        g = erdos_renyi(200, 4.0, num_labels=1, seed=9)
        g0, batches = derive_stream(g, num_updates=8, batch_size=8, seed=9)
        vsgm = make_system("VSGM", g0, TRIANGLE)
        r = vsgm.process_batch(batches[0])
        assert r.cache_bytes > 0
        assert r.cached_vertices.size > 0

    def test_non_strict_mode_allows_overflow(self):
        g = powerlaw_graph(2000, 10.0, max_degree=100, num_labels=1, seed=10)
        g0, batches = derive_stream(g, num_updates=128, batch_size=128, seed=10)
        device = DeviceConfig(
            global_memory_bytes=20_000, kernel_reserve_bytes=10_000,
            cache_buffer_bytes=10_000,
        )
        vsgm = make_system("VSGM", g0, TRIANGLE, device=device, strict_capacity=False)
        r = vsgm.process_batch(batches[0])  # no crash
        assert r.cache_bytes > device.cache_buffer_bytes
