"""Tests for shared utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    GALLOP_RATIO,
    as_generator,
    format_bytes,
    format_time_ns,
    geometric_mean,
    intersect_sorted,
    intersect_sorted_gallop,
    intersect_sorted_merge,
    is_sorted,
    merge_sorted,
    merge_sorted_unique,
    require,
    spawn_generator,
)


class TestRng:
    def test_as_generator_from_int(self):
        a, b = as_generator(5), as_generator(5)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_as_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_spawn_independent(self):
        parent = as_generator(3)
        child = spawn_generator(parent)
        assert child is not parent
        # spawning advanced the parent deterministically
        parent2 = as_generator(3)
        child2 = spawn_generator(parent2)
        assert child.integers(0, 1 << 30) == child2.integers(0, 1 << 30)


class TestRequire:
    def test_passes(self):
        require(True, "never")

    def test_raises(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestSortedOps:
    def test_is_sorted(self):
        assert is_sorted(np.array([1, 2, 2, 3]))
        assert not is_sorted(np.array([2, 1]))
        assert is_sorted(np.array([]))
        assert is_sorted(np.array([7]))

    def test_merge_sorted_unique(self):
        out = merge_sorted_unique(np.array([1, 3, 5]), np.array([2, 3, 6]))
        assert out.tolist() == [1, 2, 3, 5, 6]

    def test_merge_with_empty(self):
        a = np.array([1, 2], dtype=np.int64)
        assert merge_sorted_unique(a, np.array([], dtype=np.int64)).tolist() == [1, 2]
        assert merge_sorted_unique(np.array([], dtype=np.int64), a).tolist() == [1, 2]

    def test_intersect_sorted(self):
        out = intersect_sorted(np.array([1, 3, 5, 7]), np.array([3, 4, 7]))
        assert out.tolist() == [3, 7]
        assert intersect_sorted(np.array([1]), np.array([], dtype=np.int64)).size == 0


sorted_unique_arrays = st.lists(
    st.integers(min_value=0, max_value=300), max_size=60
).map(lambda xs: np.array(sorted(set(xs)), dtype=np.int64))

sorted_arrays = st.lists(
    st.integers(min_value=0, max_value=300), max_size=60
).map(lambda xs: np.array(sorted(xs), dtype=np.int64))


class TestSortedKernelsProperties:
    """Property-based checks of the sorted-set kernels against NumPy oracles."""

    @settings(max_examples=200, deadline=None)
    @given(a=sorted_arrays, b=sorted_arrays)
    def test_merge_sorted_matches_full_sort(self, a, b):
        out = merge_sorted(a, b)
        expected = np.sort(np.concatenate([a, b]), kind="stable")
        assert out.tolist() == expected.tolist()

    @settings(max_examples=200, deadline=None)
    @given(a=sorted_unique_arrays, b=sorted_unique_arrays)
    def test_merge_sorted_unique_matches_union1d(self, a, b):
        out = merge_sorted_unique(a, b)
        assert out.tolist() == np.union1d(a, b).tolist()

    @settings(max_examples=200, deadline=None)
    @given(a=sorted_unique_arrays, b=sorted_unique_arrays)
    def test_intersect_variants_match_intersect1d(self, a, b):
        expected = np.intersect1d(a, b).tolist()
        assert intersect_sorted(a, b).tolist() == expected
        assert intersect_sorted_merge(a, b).tolist() == expected
        assert intersect_sorted_gallop(a, b).tolist() == expected

    def test_empty_and_disjoint(self):
        empty = np.empty(0, dtype=np.int64)
        a = np.array([1, 5, 9], dtype=np.int64)
        b = np.array([2, 6, 10], dtype=np.int64)
        for fn in (intersect_sorted, intersect_sorted_merge,
                   intersect_sorted_gallop):
            assert fn(a, empty).size == 0
            assert fn(empty, a).size == 0
            assert fn(empty, empty).size == 0
            assert fn(a, b).size == 0  # disjoint
        assert merge_sorted(a, empty).tolist() == a.tolist()
        assert merge_sorted(empty, b).tolist() == b.tolist()
        assert merge_sorted(a, b).tolist() == [1, 2, 5, 6, 9, 10]

    def test_gallop_dispatch_on_skew(self):
        """The dispatcher takes the galloping path for skewed sizes and the
        merge path otherwise; both must agree with the oracle."""
        small = np.array([10, 500, 900], dtype=np.int64)
        large = np.arange(0, GALLOP_RATIO * small.size * 10, 2, dtype=np.int64)
        assert large.size >= GALLOP_RATIO * small.size
        expected = np.intersect1d(small, large).tolist()
        assert intersect_sorted(small, large).tolist() == expected
        assert intersect_sorted(large, small).tolist() == expected

    def test_merge_sorted_duplicates_across_runs(self):
        # values present in both runs must appear twice in the merge
        a = np.array([1, 3, 3, 7], dtype=np.int64)
        b = np.array([3, 7, 8], dtype=np.int64)
        assert merge_sorted(a, b).tolist() == [1, 3, 3, 3, 7, 7, 8]


class TestMergeRuns:
    """Unit tests for the executor's linear run merge (satellite of the
    frontier-kernel change: no more concatenate-then-full-sort)."""

    def test_single_run_fast_path_no_copy(self):
        from repro.core.matching import _merge_runs

        run = np.array([2, 4, 6], dtype=np.int64)
        assert _merge_runs((run,)) is run

    def test_interleaved_runs(self):
        from repro.core.matching import _merge_runs

        base = np.array([1, 4, 8, 12], dtype=np.int64)
        delta = np.array([2, 5, 9], dtype=np.int64)
        assert _merge_runs((base, delta)).tolist() == [1, 2, 4, 5, 8, 9, 12]

    def test_three_runs(self):
        from repro.core.matching import _merge_runs

        runs = (
            np.array([0, 10], dtype=np.int64),
            np.array([5, 15], dtype=np.int64),
            np.array([3, 7], dtype=np.int64),
        )
        assert _merge_runs(runs).tolist() == [0, 3, 5, 7, 10, 15]

    def test_empty_runs(self):
        from repro.core.matching import _merge_runs

        empty = np.empty(0, dtype=np.int64)
        run = np.array([1, 2], dtype=np.int64)
        assert _merge_runs((empty, run)).tolist() == [1, 2]
        assert _merge_runs((run, empty)).tolist() == [1, 2]


class TestSegmentedContains:
    def test_basic(self):
        from repro.core.frontier import segmented_contains

        flat = np.array([1, 3, 5, 2, 4, 6, 8], dtype=np.int64)
        starts = np.array([0, 3, 3], dtype=np.int64)
        lengths = np.array([3, 4, 0], dtype=np.int64)
        queries = np.array([3, 6, 5], dtype=np.int64)
        out = segmented_contains(flat, starts, lengths, queries)
        assert out.tolist() == [True, True, False]  # empty segment misses

    def test_empty_inputs(self):
        from repro.core.frontier import segmented_contains

        empty = np.empty(0, dtype=np.int64)
        assert segmented_contains(empty, empty, empty, empty).size == 0
        flat = np.array([1, 2], dtype=np.int64)
        assert segmented_contains(flat, empty, empty, empty).size == 0

    @settings(max_examples=100, deadline=None)
    @given(
        segments=st.lists(
            st.lists(st.integers(0, 50), max_size=12).map(sorted),
            min_size=1, max_size=8,
        ),
        data=st.data(),
    )
    def test_matches_python_membership(self, segments, data):
        from repro.core.frontier import segmented_contains

        flat = np.array([x for seg in segments for x in seg], dtype=np.int64)
        lengths = np.array([len(s) for s in segments], dtype=np.int64)
        starts = np.concatenate([[0], np.cumsum(lengths)[:-1]]).astype(np.int64)
        qrows = data.draw(st.lists(
            st.integers(0, len(segments) - 1), max_size=20))
        qvals = data.draw(st.lists(
            st.integers(0, 60), min_size=len(qrows), max_size=len(qrows)))
        queries = np.array(qvals, dtype=np.int64)
        out = segmented_contains(
            flat, starts[np.array(qrows, dtype=np.int64)]
            if qrows else np.empty(0, dtype=np.int64),
            lengths[np.array(qrows, dtype=np.int64)]
            if qrows else np.empty(0, dtype=np.int64),
            queries,
        )
        expected = [v in segments[r] for r, v in zip(qrows, qvals)]
        assert out.tolist() == expected


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(3 * 1024**2) == "3.0 MB"
        assert format_bytes(5 * 1024**3) == "5.0 GB"

    def test_format_time(self):
        assert format_time_ns(500) == "500 ns"
        assert format_time_ns(2_500) == "2.50 us"
        assert format_time_ns(3_000_000) == "3.00 ms"
        assert format_time_ns(2e9) == "2.000 s"


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([3]) == pytest.approx(3.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])
