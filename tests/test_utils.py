"""Tests for shared utilities."""

import numpy as np
import pytest

from repro.utils import (
    as_generator,
    format_bytes,
    format_time_ns,
    geometric_mean,
    intersect_sorted,
    is_sorted,
    merge_sorted_unique,
    require,
    spawn_generator,
)


class TestRng:
    def test_as_generator_from_int(self):
        a, b = as_generator(5), as_generator(5)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_as_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_spawn_independent(self):
        parent = as_generator(3)
        child = spawn_generator(parent)
        assert child is not parent
        # spawning advanced the parent deterministically
        parent2 = as_generator(3)
        child2 = spawn_generator(parent2)
        assert child.integers(0, 1 << 30) == child2.integers(0, 1 << 30)


class TestRequire:
    def test_passes(self):
        require(True, "never")

    def test_raises(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestSortedOps:
    def test_is_sorted(self):
        assert is_sorted(np.array([1, 2, 2, 3]))
        assert not is_sorted(np.array([2, 1]))
        assert is_sorted(np.array([]))
        assert is_sorted(np.array([7]))

    def test_merge_sorted_unique(self):
        out = merge_sorted_unique(np.array([1, 3, 5]), np.array([2, 3, 6]))
        assert out.tolist() == [1, 2, 3, 5, 6]

    def test_merge_with_empty(self):
        a = np.array([1, 2], dtype=np.int64)
        assert merge_sorted_unique(a, np.array([], dtype=np.int64)).tolist() == [1, 2]
        assert merge_sorted_unique(np.array([], dtype=np.int64), a).tolist() == [1, 2]

    def test_intersect_sorted(self):
        out = intersect_sorted(np.array([1, 3, 5, 7]), np.array([3, 4, 7]))
        assert out.tolist() == [3, 7]
        assert intersect_sorted(np.array([1]), np.array([], dtype=np.int64)).size == 0


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(3 * 1024**2) == "3.0 MB"
        assert format_bytes(5 * 1024**3) == "5.0 GB"

    def test_format_time(self):
        assert format_time_ns(500) == "500 ns"
        assert format_time_ns(2_500) == "2.50 us"
        assert format_time_ns(3_000_000) == "3.00 ms"
        assert format_time_ns(2e9) == "2.000 s"


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([3]) == pytest.approx(3.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])
