"""Unit tests for repro.graphs.static_graph."""

import numpy as np
import pytest

from repro.graphs import StaticGraph
from repro.graphs.generators import erdos_renyi


def small_graph():
    #   0 - 1
    #   | \ |
    #   3   2
    return StaticGraph.from_edges(4, [(0, 1), (0, 2), (1, 2), (0, 3)], np.array([0, 1, 1, 2]))


class TestConstruction:
    def test_counts(self):
        g = small_graph()
        assert g.num_vertices == 4
        assert g.num_edges == 4

    def test_neighbors_sorted(self):
        g = small_graph()
        assert g.neighbors(0).tolist() == [1, 2, 3]
        assert g.neighbors(1).tolist() == [0, 2]
        assert g.neighbors(3).tolist() == [0]

    def test_degrees(self):
        g = small_graph()
        assert g.degrees().tolist() == [3, 2, 2, 1]
        assert g.max_degree() == 3
        assert g.degree(0) == 3

    def test_labels(self):
        g = small_graph()
        assert g.label(2) == 1
        assert g.labels.tolist() == [0, 1, 1, 2]

    def test_default_labels_zero(self):
        g = StaticGraph.from_edges(3, [(0, 1)])
        assert g.labels.tolist() == [0, 0, 0]

    def test_duplicate_edges_dropped(self):
        g = StaticGraph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loops_dropped(self):
        g = StaticGraph.from_edges(3, [(0, 0), (1, 2)])
        assert g.num_edges == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            StaticGraph.from_edges(2, [(0, 5)])

    def test_empty_graph(self):
        g = StaticGraph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.max_degree() == 0

    def test_zero_vertex_graph(self):
        g = StaticGraph.empty(0)
        assert g.num_vertices == 0
        assert g.max_degree() == 0


class TestQueries:
    def test_has_edge(self):
        g = small_graph()
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(1, 3)
        assert not g.has_edge(3, 3)

    def test_edge_array_canonical(self):
        g = small_graph()
        edges = g.edge_array()
        assert edges.shape == (4, 2)
        assert bool(np.all(edges[:, 0] < edges[:, 1]))
        assert set(map(tuple, edges.tolist())) == {(0, 1), (0, 2), (0, 3), (1, 2)}

    def test_iter_edges_matches_edge_array(self):
        g = small_graph()
        assert sorted(g.iter_edges()) == sorted(map(tuple, g.edge_array().tolist()))

    def test_size_bytes_positive_and_monotone(self):
        small = StaticGraph.from_edges(4, [(0, 1)])
        big = small_graph()
        assert 0 < small.size_bytes() < big.size_bytes()


class TestDerivedGraphs:
    def test_without_edges(self):
        g = small_graph()
        g2 = g.without_edges(np.array([[1, 0], [0, 3]]))
        assert g2.num_edges == 2
        assert not g2.has_edge(0, 1)
        assert not g2.has_edge(0, 3)
        assert g2.has_edge(0, 2)
        # labels preserved
        assert g2.labels.tolist() == g.labels.tolist()

    def test_with_edges(self):
        g = small_graph()
        g2 = g.with_edges(np.array([[1, 3], [2, 3]]))
        assert g2.num_edges == 6
        assert g2.has_edge(1, 3)
        assert g2.has_edge(2, 3)

    def test_with_then_without_roundtrip(self):
        g = small_graph()
        extra = np.array([[1, 3]])
        assert g.with_edges(extra).without_edges(extra) == g

    def test_without_noop_on_empty(self):
        g = small_graph()
        assert g.without_edges(np.empty((0, 2), dtype=np.int64)) == g

    def test_equality(self):
        assert small_graph() == small_graph()
        g2 = StaticGraph.from_edges(4, [(0, 1)], np.array([0, 1, 1, 2]))
        assert small_graph() != g2


class TestValidation:
    def test_bad_indptr_rejected(self):
        with pytest.raises(ValueError):
            StaticGraph(np.array([1, 2]), np.array([0]))

    def test_unsorted_neighbors_rejected(self):
        with pytest.raises(ValueError):
            StaticGraph(np.array([0, 2, 3, 4]), np.array([2, 1, 0, 0]), None)

    def test_random_graph_validates(self):
        g = erdos_renyi(200, 5.0, seed=3)
        # constructor validation already ran; spot-check symmetry
        for u in range(0, 200, 17):
            for v in g.neighbors(u).tolist():
                assert g.has_edge(v, u)
