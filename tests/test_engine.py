"""End-to-end tests for the GCSM engine (the five-step pipeline of Fig. 3)."""

import numpy as np
import pytest

from repro.core.engine import GCSMEngine
from repro.core.reference import count_embeddings
from repro.graphs import StaticGraph, UpdateBatch
from repro.graphs.generators import erdos_renyi, powerlaw_graph
from repro.graphs.stream import derive_stream
from repro.query import QueryGraph

TRIANGLE = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")
TAILED = QueryGraph(4, [(0, 1), (1, 2), (0, 2), (2, 3)], [0, 0, 1, 1], name="tailed")


class TestCorrectness:
    @pytest.mark.parametrize("query", [TRIANGLE, TAILED], ids=lambda q: q.name)
    def test_stream_delta_counts_match_oracle(self, query):
        g = erdos_renyi(50, 5.0, num_labels=2, seed=1)
        g0, batches = derive_stream(g, update_fraction=0.4, batch_size=16, seed=1)
        engine = GCSMEngine(g0, query, seed=2)
        prev = count_embeddings(g0, query)
        for batch in batches[:4]:
            result = engine.process_batch(batch)
            now = count_embeddings(engine.snapshot(), query)
            assert result.delta_count == now - prev
            prev = now
        assert engine.batches_processed == 4
        assert engine.total_delta == prev - count_embeddings(g0, query)

    def test_degree_policy_equally_correct(self):
        g = erdos_renyi(40, 5.0, num_labels=1, seed=3)
        g0, batches = derive_stream(g, update_fraction=0.3, batch_size=12, seed=3)
        freq_engine = GCSMEngine(g0, TRIANGLE, policy="frequency", seed=4)
        deg_engine = GCSMEngine(g0, TRIANGLE, policy="degree", seed=4)
        for batch in batches[:3]:
            a = freq_engine.process_batch(batch)
            b = deg_engine.process_batch(batch)
            assert a.delta_count == b.delta_count  # caching never changes results

    def test_empty_batch_rejected(self):
        g = erdos_renyi(10, 3.0, seed=5)
        engine = GCSMEngine(g, TRIANGLE)
        with pytest.raises(ValueError):
            engine.process_batch(UpdateBatch(np.empty((0, 2)), np.empty(0)))

    def test_unknown_policy_rejected(self):
        g = erdos_renyi(10, 3.0, seed=5)
        with pytest.raises(ValueError):
            GCSMEngine(g, TRIANGLE, policy="magic")


class TestPipelineArtifacts:
    def make_result(self, **kwargs):
        g = powerlaw_graph(800, 8.0, max_degree=80, num_labels=1, seed=6)
        g0, batches = derive_stream(g, num_updates=64, batch_size=64, seed=6)
        engine = GCSMEngine(g0, TRIANGLE, seed=7, **kwargs)
        return engine, engine.process_batch(batches[0])

    def test_breakdown_phases_populated(self):
        _, r = self.make_result()
        bd = r.breakdown
        assert bd.update_ns > 0
        assert bd.estimate_ns > 0  # frequency policy ran FE
        assert bd.pack_ns > 0
        assert bd.match_ns > 0
        assert bd.reorg_ns > 0
        assert bd.total_ns == pytest.approx(
            bd.update_ns + bd.estimate_ns + bd.pack_ns + bd.match_ns + bd.reorg_ns
        )

    def test_cache_artifacts(self):
        engine, r = self.make_result()
        assert r.cache_bytes <= engine.cache_budget_bytes + 64
        assert r.cached_vertices.size > 0
        assert set(np.unique(r.cached_vertices).tolist()) == set(r.cached_vertices.tolist())
        assert r.cache_hits + r.cache_misses > 0

    def test_estimation_attached(self):
        _, r = self.make_result()
        assert r.estimation is not None
        assert r.estimation.sampled_vertices.size >= r.cached_vertices.size

    def test_degree_policy_skips_estimation(self):
        _, r = self.make_result(policy="degree")
        assert r.estimation is None
        assert r.breakdown.estimate_ns == 0

    def test_cache_budget_respected(self):
        engine, r = self.make_result(cache_budget_bytes=500)
        assert r.cache_bytes <= 500 + 64

    def test_coverage_metric_bounds(self):
        _, r = self.make_result()
        for frac in (0.01, 0.05, 0.5, 1.0):
            assert 0.0 <= r.coverage(frac) <= 1.0
        # full-graph cache would give coverage 1; empty gives 0 when accessed
        assert r.coverage(1.0) <= 1.0

    def test_cpu_access_bytes_less_with_cache(self):
        """GCSM's zero-copy traffic must be below a cache-less run."""
        g = powerlaw_graph(800, 8.0, max_degree=80, num_labels=1, seed=6)
        g0, batches = derive_stream(g, num_updates=64, batch_size=64, seed=6)
        cached = GCSMEngine(g0, TRIANGLE, seed=7).process_batch(batches[0])
        uncached = GCSMEngine(
            g0, TRIANGLE, seed=7, cache_budget_bytes=0
        ).process_batch(batches[0])
        assert cached.cpu_access_bytes < uncached.cpu_access_bytes
        assert cached.delta_count == uncached.delta_count

    def test_process_stream(self):
        g = erdos_renyi(40, 4.0, num_labels=1, seed=8)
        g0, batches = derive_stream(g, update_fraction=0.3, batch_size=10, seed=8)
        engine = GCSMEngine(g0, TRIANGLE, seed=9)
        results = engine.process_stream(batches[:3])
        assert len(results) == 3
        assert engine.batches_processed == 3

    def test_adaptive_walks_mode(self):
        g = erdos_renyi(40, 4.0, num_labels=1, seed=10)
        g0, batches = derive_stream(g, update_fraction=0.3, batch_size=10, seed=10)
        engine = GCSMEngine(g0, TRIANGLE, adaptive_walks=True, num_walks=64, seed=11)
        r = engine.process_batch(batches[0])
        assert r.estimation is not None
        assert r.estimation.num_walks >= 64


class TestInitialMatch:
    def test_matches_oracle_snapshot(self):
        g = erdos_renyi(40, 5.0, num_labels=2, seed=20)
        engine = GCSMEngine(g, TRIANGLE, seed=21)
        count, sim_ns = engine.initial_match()
        assert count == count_embeddings(g, TRIANGLE)
        assert sim_ns > 0

    def test_rejects_open_batch(self):
        g = erdos_renyi(20, 3.0, seed=22)
        engine = GCSMEngine(g, TRIANGLE, seed=23)
        engine.graph.apply_batch(UpdateBatch([(0, 1)], [-1])
                                 if g.has_edge(0, 1) else UpdateBatch([(0, 1)], [1]))
        with pytest.raises(ValueError):
            engine.initial_match()
        engine.graph.reorganize()
        engine.initial_match()  # works again once settled

    def test_initial_plus_stream_equals_final(self):
        g = erdos_renyi(40, 5.0, num_labels=1, seed=24)
        g0, batches = derive_stream(g, update_fraction=0.3, batch_size=10, seed=24)
        engine = GCSMEngine(g0, TRIANGLE, seed=25)
        initial, _ = engine.initial_match()
        delta = sum(engine.process_batch(b).delta_count for b in batches)
        final, _ = engine.initial_match()
        assert initial + delta == final
