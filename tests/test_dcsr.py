"""Tests for the DCSR packed cache format (paper Sec. V-B, Fig. 6)."""

import numpy as np
import pytest

from repro.core.dcsr import DcsrCache, packed_size_bytes
from repro.graphs import DynamicGraph, StaticGraph, UpdateBatch
from repro.graphs.generators import erdos_renyi
from repro.graphs.stream import derive_stream


def store_with_batch():
    # Fig. 5-like scenario: vertex 3 gains neighbor, vertex 1 loses one
    g = StaticGraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (1, 4)])
    dg = DynamicGraph(g)
    dg.apply_batch(UpdateBatch([(0, 3), (1, 4)], [1, -1]))
    return dg


class TestBuild:
    def test_paper_fig6_structure(self):
        dg = store_with_batch()
        cache = DcsrCache.build(dg, np.array([3, 1]))  # unsorted input
        assert cache.rowidx.tolist() == [1, 3]  # sorted
        # vertex 1: base [0, 2, -(4+1)] (deletion mark), no delta
        base1, delta1 = cache.runs(0)
        assert base1.tolist() == [0, 2, -5]
        assert delta1.size == 0
        assert cache.rowptr[0].tolist() == [0, -1]
        # vertex 3: base [2, 4], delta [0]
        base3, delta3 = cache.runs(1)
        assert base3.tolist() == [2, 4]
        assert delta3.tolist() == [0]
        assert cache.rowptr[1, 0] == 3
        assert cache.rowptr[1, 1] == 5
        # sentinel carries len(colidx)
        assert cache.rowptr[2, 0] == cache.colidx.shape[0] == 6

    def test_empty_selection(self):
        dg = store_with_batch()
        cache = DcsrCache.build(dg, np.empty(0, dtype=np.int64))
        assert cache.num_cached == 0
        assert cache.lookup(1) == -1
        assert cache.total_bytes == 2 * 4  # sentinel rowptr only

    def test_duplicate_vertices_deduped(self):
        dg = store_with_batch()
        cache = DcsrCache.build(dg, np.array([3, 3, 1]))
        assert cache.num_cached == 2

    def test_out_of_range_rejected(self):
        dg = store_with_batch()
        with pytest.raises(ValueError):
            DcsrCache.build(dg, np.array([99]))


class TestLookupAndRuns:
    def test_lookup_hit_and_miss(self):
        dg = store_with_batch()
        cache = DcsrCache.build(dg, np.array([1, 3]))
        assert cache.lookup(1) == 0
        assert cache.lookup(3) == 1
        assert cache.lookup(0) == -1
        assert cache.lookup(4) == -1

    def test_version_semantics_match_store(self):
        """Cached OLD/NEW views must equal the dynamic store's."""
        g = erdos_renyi(60, 5.0, seed=3)
        g0, batches = derive_stream(g, update_fraction=0.4, batch_size=20, seed=3)
        dg = DynamicGraph(g0)
        dg.apply_batch(batches[0])
        verts = np.arange(dg.num_vertices, dtype=np.int64)
        cache = DcsrCache.build(dg, verts)
        for v in range(dg.num_vertices):
            row = cache.lookup(v)
            assert row >= 0
            assert cache.neighbors_old(row).tolist() == dg.neighbors_old(v).tolist()
            cb, cd = cache.neighbors_new_parts(row)
            sb, sd = dg.neighbors_new_parts(v)
            assert cb.tolist() == sb.tolist()
            assert cd.tolist() == sd.tolist()

    def test_probe_cost_logarithmic(self):
        dg = store_with_batch()
        small = DcsrCache.build(dg, np.array([1]))
        big = DcsrCache.build(dg, np.arange(5))
        assert small.probe_cost_ops() <= big.probe_cost_ops()


class TestSizes:
    def test_total_bytes_accounting(self):
        dg = store_with_batch()
        cache = DcsrCache.build(dg, np.array([1, 3]))
        expected = (2 + 3 * 2 + cache.colidx.shape[0]) * 4
        assert cache.total_bytes == expected

    def test_packed_size_helper(self):
        assert packed_size_bytes(0) == 12
        assert packed_size_bytes(10) == 52


class TestBuildParity:
    """The vectorized build must reproduce the reference loop bit-for-bit."""

    def assert_identical(self, a: DcsrCache, b: DcsrCache) -> None:
        assert a.rowidx.dtype == b.rowidx.dtype
        assert a.rowptr.dtype == b.rowptr.dtype
        assert a.colidx.dtype == b.colidx.dtype
        assert np.array_equal(a.rowidx, b.rowidx)
        assert np.array_equal(a.rowptr, b.rowptr)
        assert np.array_equal(a.colidx, b.colidx)

    def test_fig6_scenario(self):
        dg = store_with_batch()
        fast = DcsrCache.build(dg, np.array([3, 1]))
        ref = DcsrCache.build_reference(dg, np.array([3, 1]))
        self.assert_identical(fast, ref)

    def test_empty_selection(self):
        dg = store_with_batch()
        fast = DcsrCache.build(dg, np.empty(0, dtype=np.int64))
        ref = DcsrCache.build_reference(dg, np.empty(0, dtype=np.int64))
        self.assert_identical(fast, ref)
        assert fast.rowptr.tolist() == [[0, -1]]

    def test_randomized_streams_with_deletions(self):
        g = erdos_renyi(200, 6.0, num_labels=2, seed=13)
        g0, batches = derive_stream(
            g, update_fraction=0.4, batch_size=32, insert_probability=0.5, seed=13
        )
        dg = DynamicGraph(g0)
        rng = np.random.default_rng(99)
        for batch in batches[:6]:
            dg.apply_batch(batch)
            # mixed selections: random subsets, duplicates, isolated vertices
            verts = rng.choice(dg.num_vertices, size=50, replace=True)
            self.assert_identical(
                DcsrCache.build(dg, verts), DcsrCache.build_reference(dg, verts)
            )
            everything = np.arange(dg.num_vertices, dtype=np.int64)
            self.assert_identical(
                DcsrCache.build(dg, everything),
                DcsrCache.build_reference(dg, everything),
            )
            dg.reorganize()
