"""Tests for the device cost model, counters, and simulated clock."""

import pytest

from repro.gpu import (
    AccessCounters,
    Channel,
    DeviceConfig,
    TimeBreakdown,
    default_device,
    simulated_time_ns,
)


class TestDeviceConfig:
    def test_zero_copy_lines_round_up(self):
        d = default_device()
        assert d.zero_copy_lines(0) == 0
        assert d.zero_copy_lines(1) == 1
        assert d.zero_copy_lines(128) == 1
        assert d.zero_copy_lines(129) == 2
        assert d.zero_copy_lines(4 * 128) == 4

    def test_channel_cost_ordering(self):
        """Per-byte: GPU global << PCIe zero-copy << UM faulting."""
        d = default_device()
        nbytes = 4096
        gpu = d.gpu_read_time_ns(nbytes)
        zc = d.zero_copy_time_ns(d.zero_copy_lines(nbytes))
        um = d.um_fault_time_ns(1)  # one page = 4096 bytes
        assert gpu < zc < um
        assert um / zc > 10  # faults are catastrophically slower

    def test_dma_amortizes_only_in_bulk(self):
        d = default_device()
        small = 512
        # small transfer: DMA setup dominates, zero-copy wins
        assert d.dma_time_ns(small) > d.zero_copy_time_ns(d.zero_copy_lines(small))
        # bulk transfer: DMA bandwidth wins over per-line overheads
        bulk = 50_000_000
        assert d.dma_time_ns(bulk) < d.zero_copy_time_ns(d.zero_copy_lines(bulk))

    def test_memory_budget_partition(self):
        d = default_device()
        assert d.cache_buffer_bytes + d.kernel_reserve_bytes == d.global_memory_bytes

    def test_scaled_override(self):
        d = default_device().scaled(pcie_bandwidth_bpns=8.0)
        assert d.pcie_bandwidth_bpns == 8.0
        assert d.gpu_global_bandwidth_bpns == default_device().gpu_global_bandwidth_bpns

    def test_um_cache_pages(self):
        d = DeviceConfig(global_memory_bytes=4096 * 10, um_cache_fraction=0.5)
        assert d.um_cache_pages() == 5


class TestAccessCounters:
    def test_record_access_accumulates(self):
        c = AccessCounters()
        c.record_access(Channel.ZERO_COPY, 3, 256, transactions=2)
        c.record_access(Channel.ZERO_COPY, 3, 128, transactions=1)
        c.record_access(Channel.GPU_GLOBAL, 5, 64)
        assert c.bytes_by_channel[Channel.ZERO_COPY] == 384
        assert c.transactions_by_channel[Channel.ZERO_COPY] == 3
        assert c.vertex_access_counts(8).tolist() == [0, 0, 0, 2, 0, 1, 0, 0]
        assert c.total_access_count == 3

    def test_vertex_histogram_grows(self):
        c = AccessCounters()
        c.record_access(Channel.CPU_DRAM, 5000, 4)
        assert c.vertex_access_counts(6000)[5000] == 1

    def test_top_fraction_share(self):
        c = AccessCounters()
        for _ in range(80):
            c.record_access(Channel.CPU_DRAM, 1, 4)
        for v in (2, 3, 4, 5):
            for _ in range(5):
                c.record_access(Channel.CPU_DRAM, v, 4)
        # 5 accessed vertices; top-20% = 1 vertex = 80 of 100 accesses
        assert c.top_fraction_share(0.2) == pytest.approx(0.8)
        assert c.top_fraction_share(1.0) == pytest.approx(1.0)

    def test_top_fraction_empty(self):
        assert AccessCounters().top_fraction_share(0.05) == 0.0

    def test_merge(self):
        a, b = AccessCounters(), AccessCounters()
        a.record_access(Channel.ZERO_COPY, 1, 100)
        b.record_access(Channel.ZERO_COPY, 2000, 50)
        b.record_um_fault(3)
        b.record_dma(1000)
        b.record_compute(7)
        a.merge(b)
        assert a.bytes_by_channel[Channel.ZERO_COPY] == 150
        assert a.um_faults == 3
        assert a.dma_bytes == 1000
        assert a.compute_ops == 7
        assert a.vertex_access_counts(2001)[2000] == 1

    def test_cpu_access_bytes(self):
        c = AccessCounters()
        c.record_access(Channel.ZERO_COPY, 1, 100)
        c.record_um_fault(2)
        assert c.cpu_access_bytes(um_page_bytes=4096) == 100 + 8192


class TestSimulatedTime:
    def test_gpu_zero_copy_stalls_add(self):
        d = default_device()
        c = AccessCounters()
        c.record_compute(1000)
        base = simulated_time_ns(c, d)
        c.record_access(Channel.ZERO_COPY, 0, 1024, transactions=8)
        assert simulated_time_ns(c, d) > base

    def test_gpu_overlap_semantics(self):
        """Compute and global-memory streams overlap (max), not add."""
        d = default_device()
        c = AccessCounters()
        c.record_compute(10_000_000)
        compute_only = simulated_time_ns(c, d)
        c.record_access(Channel.GPU_GLOBAL, 0, 100)  # tiny read hides under compute
        assert simulated_time_ns(c, d) == pytest.approx(compute_only)

    def test_cpu_platform_slower_per_op(self):
        d = default_device()
        c = AccessCounters()
        c.record_compute(1_000_000)
        assert simulated_time_ns(c, d, platform="cpu") > simulated_time_ns(c, d, platform="gpu")
        assert simulated_time_ns(c, d, platform="cpu_scalar") > simulated_time_ns(
            c, d, platform="cpu"
        )

    def test_unknown_platform(self):
        with pytest.raises(ValueError):
            simulated_time_ns(AccessCounters(), default_device(), platform="tpu")

    def test_dma_included_for_gpu(self):
        d = default_device()
        c = AccessCounters()
        c.record_dma(1_000_000)
        assert simulated_time_ns(c, d) == pytest.approx(d.dma_time_ns(1_000_000))


class TestTimeBreakdown:
    def test_total_and_fractions(self):
        t = TimeBreakdown(update_ns=1, estimate_ns=2, pack_ns=3, match_ns=4, reorg_ns=0)
        assert t.total_ns == 10
        assert t.fe_fraction == pytest.approx(0.2)
        assert t.dc_fraction == pytest.approx(0.3)

    def test_empty_fractions(self):
        t = TimeBreakdown()
        assert t.fe_fraction == 0.0 and t.dc_fraction == 0.0

    def test_add_and_scale(self):
        t = TimeBreakdown(1, 1, 1, 1, 1) + TimeBreakdown(1, 2, 3, 4, 5)
        assert t.total_ns == 20
        assert t.scaled(0.5).total_ns == pytest.approx(10.0)
