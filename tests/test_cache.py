"""Tests for cache policies and the cached device view (paper Sec. V-C)."""

import numpy as np
import pytest

from repro.core.cache import (
    CachedDeviceView,
    DegreeCachePolicy,
    FrequencyCachePolicy,
    select_within_budget,
)
from repro.core.dcsr import DcsrCache, packed_size_bytes
from repro.graphs import DynamicGraph, StaticGraph, UpdateBatch
from repro.graphs.generators import erdos_renyi
from repro.gpu import AccessCounters, Channel, default_device
from repro.query.plan import EdgeVersion


def settled_store(n=30, seed=0):
    return DynamicGraph(erdos_renyi(n, 4.0, seed=seed))


class TestSelectWithinBudget:
    def test_respects_budget_prefix(self):
        dg = settled_store()
        ranked = np.arange(10, dtype=np.int64)
        sizes = [packed_size_bytes(dg.degree_new(v)) for v in range(10)]
        budget = sizes[0] + sizes[1]
        chosen = select_within_budget(dg, ranked, budget)
        assert chosen.tolist() == [0, 1]

    def test_zero_budget(self):
        dg = settled_store()
        assert select_within_budget(dg, np.arange(5), 0).size == 0

    def test_large_budget_takes_all(self):
        dg = settled_store()
        chosen = select_within_budget(dg, np.arange(dg.num_vertices), 10**9)
        assert chosen.size == dg.num_vertices


class TestPolicies:
    def test_frequency_policy_ranks_by_estimate(self):
        dg = settled_store()
        freq = np.zeros(dg.num_vertices)
        freq[7], freq[3], freq[11] = 100.0, 50.0, 10.0
        ranked = FrequencyCachePolicy().rank(dg, freq)
        assert ranked.tolist() == [7, 3, 11]

    def test_frequency_policy_requires_estimates(self):
        dg = settled_store()
        assert FrequencyCachePolicy().rank(dg, None).size == 0

    def test_degree_policy_ranks_by_degree(self):
        dg = settled_store(seed=4)
        ranked = DegreeCachePolicy().rank(dg, None)
        degs = [dg.degree_new(int(v)) for v in ranked]
        assert degs == sorted(degs, reverse=True)
        # isolated vertices excluded
        assert all(d > 0 for d in degs)

    def test_policy_names(self):
        assert FrequencyCachePolicy().name == "frequency"
        assert DegreeCachePolicy().name == "degree"


class TestCachedDeviceView:
    def make(self, cached_vertices):
        g = StaticGraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        dg = DynamicGraph(g)
        dg.apply_batch(UpdateBatch([(0, 2), (0, 4)], [1, -1]))
        counters = AccessCounters()
        cache = DcsrCache.build(dg, np.asarray(cached_vertices, dtype=np.int64))
        view = CachedDeviceView(dg, default_device(), counters, cache)
        return dg, view, counters

    def test_hit_reads_gpu_global(self):
        dg, view, counters = self.make([0, 2])
        runs = view.fetch(0, EdgeVersion.NEW)
        merged = sorted(np.concatenate(runs).tolist())
        assert merged == [1, 2]  # (0,4) deleted, (0,2) inserted
        assert view.hits == 1 and view.misses == 0
        assert counters.bytes_by_channel[Channel.GPU_GLOBAL] > 0
        assert counters.bytes_by_channel[Channel.ZERO_COPY] == 0

    def test_miss_falls_back_to_zero_copy(self):
        dg, view, counters = self.make([0, 2])
        (old,) = view.fetch(3, EdgeVersion.OLD)
        assert old.tolist() == [2, 4]
        assert view.misses == 1
        assert counters.bytes_by_channel[Channel.ZERO_COPY] > 0

    def test_cached_old_version_decodes_marks(self):
        dg, view, _ = self.make([0, 4])
        (old,) = view.fetch(0, EdgeVersion.OLD)
        assert old.tolist() == [1, 4]  # deletion mark decoded back

    def test_hit_equals_store_for_all_vertices(self):
        g = erdos_renyi(40, 5.0, seed=6)
        from repro.graphs.stream import derive_stream
        g0, batches = derive_stream(g, update_fraction=0.4, batch_size=12, seed=6)
        dg = DynamicGraph(g0)
        dg.apply_batch(batches[0])
        cache = DcsrCache.build(dg, np.arange(dg.num_vertices))
        view = CachedDeviceView(dg, default_device(), AccessCounters(), cache)
        for v in range(dg.num_vertices):
            (old,) = view.fetch(v, EdgeVersion.OLD)
            assert old.tolist() == dg.neighbors_old(v).tolist()
            merged = sorted(np.concatenate(view.fetch(v, EdgeVersion.NEW)).tolist())
            assert merged == dg.neighbors_new(v).tolist()

    def test_hit_rate(self):
        dg, view, _ = self.make([0])
        view.fetch(0, EdgeVersion.NEW)
        view.fetch(1, EdgeVersion.NEW)
        view.fetch(1, EdgeVersion.NEW)
        assert view.hit_rate == pytest.approx(1 / 3)

    def test_probe_cost_charged(self):
        dg, view, counters = self.make([0, 2])
        before = counters.compute_ops
        view.fetch(0, EdgeVersion.NEW)
        assert counters.compute_ops > before
