"""Differential tests: frontier executor vs the recursive reference.

The frontier executor's contract is *bit-identical* observable state — the
same ``MatchStats``, the same per-channel byte/transaction counters, the
same compute/output ops, the same per-vertex access histograms, and the same
sink emission order — across every view and engine in the reproduction.
These tests drive randomized workloads (insertions AND deletions) through
both executors and compare everything.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cache import CachedDeviceView
from repro.core.dcsr import DcsrCache
from repro.core.matching import (
    EXECUTORS,
    match_batch,
    match_static,
)
from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.generators import powerlaw_graph
from repro.graphs.stream import derive_stream
from repro.gpu.counters import AccessCounters
from repro.gpu.device import default_device
from repro.gpu.views import (
    FullDeviceView,
    HostCPUView,
    UnifiedMemoryView,
    ZeroCopyView,
)
from repro.query import query_by_name
from repro.query.plan import compile_delta_plans, compile_static_plan

DEVICE = default_device()


def fingerprint(counters: AccessCounters, stats, num_vertices: int) -> dict:
    """Everything observable about one executor run, hashable for equality."""
    return {
        "signed": stats.signed_count,
        "embeddings": stats.embeddings_found,
        "roots": stats.roots_processed,
        "tree_nodes": stats.tree_nodes,
        "bytes": {c.value: v for c, v in counters.bytes_by_channel.items()},
        "tx": {c.value: v for c, v in counters.transactions_by_channel.items()},
        "compute": counters.compute_ops,
        "output": counters.output_embeddings,
        "um_faults": counters.um_faults,
        "um_hits": counters.um_hits,
        "hist": counters.vertex_access_counts(num_vertices).tolist(),
        "hist_bytes": counters.vertex_access_bytes(num_vertices).tolist(),
    }


def make_view(kind: str, graph: DynamicGraph, counters: AccessCounters):
    if kind == "host":
        return HostCPUView(graph, DEVICE, counters)
    if kind == "zc":
        return ZeroCopyView(graph, DEVICE, counters)
    if kind == "um":
        return UnifiedMemoryView(graph, DEVICE, counters)
    if kind == "cached":
        # cache a deterministic subset so both hit and miss paths are hot
        verts = np.arange(0, graph.num_vertices, 3, dtype=np.int64)
        return CachedDeviceView(
            graph, DEVICE, counters, DcsrCache.build(graph, verts)
        )
    if kind == "full":
        return FullDeviceView(
            graph, DEVICE, counters, set(range(graph.num_vertices))
        )
    raise AssertionError(kind)


def run_stream(view_kind: str, g0, batches, plans, executor, filters=None):
    """Drive a whole update stream, returning fingerprints + sink trace."""
    graph = DynamicGraph(g0)
    emitted: list[tuple[tuple[int, ...], int]] = []
    prints = []
    for batch in batches:
        graph.apply_batch(batch)
        counters = AccessCounters()
        view = make_view(view_kind, graph, counters)
        stats = match_batch(
            plans,
            batch,
            view,
            sink=lambda e, s: emitted.append((e, s)),
            filters=filters,
            executor=executor,
        )
        graph.reorganize()
        prints.append(fingerprint(counters, stats, graph.num_vertices))
    return prints, emitted


@pytest.mark.parametrize("view_kind", ["host", "zc", "um", "cached", "full"])
@pytest.mark.parametrize("query_name", ["Q1", "Q3", "Q5"])
def test_views_bit_identical(view_kind, query_name):
    g = powerlaw_graph(600, 5.0, max_degree=40, num_labels=3, seed=7)
    g0, batches = derive_stream(g, num_updates=96, batch_size=32, seed=3)
    plans = compile_delta_plans(query_by_name(query_name))
    rec, rec_sink = run_stream(view_kind, g0, batches, plans, "recursive")
    fro, fro_sink = run_stream(view_kind, g0, batches, plans, "frontier")
    assert rec == fro
    assert rec_sink == fro_sink  # same embeddings, same ORDER


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_randomized_graphs_and_streams(seed):
    """Random graph shapes × random streams (inserts + deletes) agree."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(200, 900))
    avg = float(rng.uniform(3.0, 8.0))
    g = powerlaw_graph(n, avg, max_degree=50,
                       num_labels=int(rng.integers(1, 4)), seed=seed)
    g0, batches = derive_stream(
        g, num_updates=64, batch_size=16,
        insert_probability=float(rng.uniform(0.3, 0.7)), seed=seed + 100,
    )
    query = query_by_name(["Q1", "Q2", "Q4", "Q6"][seed % 4])
    plans = compile_delta_plans(query)
    rec, rec_sink = run_stream("zc", g0, batches, plans, "recursive")
    fro, fro_sink = run_stream("zc", g0, batches, plans, "frontier")
    assert rec == fro
    assert rec_sink == fro_sink


def test_filters_path_identical():
    """RapidFlow-style candidate filters take the same pruning decisions."""
    g = powerlaw_graph(500, 5.0, max_degree=40, num_labels=3, seed=11)
    g0, batches = derive_stream(g, num_updates=64, batch_size=32, seed=5)
    query = query_by_name("Q1")
    plans = compile_delta_plans(query)
    # a deterministic, label-consistent candidate restriction per query vertex
    filters = {
        u: np.nonzero(g0.labels == query.label(u))[0].astype(np.int64)[::2].copy()
        for u in range(query.num_vertices)
    }
    for f in filters.values():
        f.sort()
    rec, rec_sink = run_stream("host", g0, batches, plans, "recursive",
                               filters=filters)
    fro, fro_sink = run_stream("host", g0, batches, plans, "frontier",
                               filters=filters)
    assert rec == fro
    assert rec_sink == fro_sink


def test_match_static_identical():
    g = powerlaw_graph(400, 5.0, max_degree=30, num_labels=2, seed=21)
    plan = compile_static_plan(query_by_name("Q2"))
    results = {}
    for executor in EXECUTORS:
        graph = DynamicGraph(g)
        counters = AccessCounters()
        view = ZeroCopyView(graph, DEVICE, counters)
        emitted: list = []
        stats = match_static(
            plan, view, sink=lambda e, s: emitted.append((e, s)),
            executor=executor,
        )
        results[executor] = (fingerprint(counters, stats, g.num_vertices), emitted)
    assert results["frontier"] == results["recursive"]


def test_unknown_executor_rejected():
    g = powerlaw_graph(50, 3.0, max_degree=10, num_labels=1, seed=0)
    g0, batches = derive_stream(g, num_updates=8, batch_size=8, seed=0)
    graph = DynamicGraph(g0)
    graph.apply_batch(batches[0])
    view = HostCPUView(graph, DEVICE, AccessCounters())
    with pytest.raises(ValueError, match="unknown executor"):
        match_batch(compile_delta_plans(query_by_name("Q1")), batches[0], view,
                    executor="warp")


# ----------------------------------------------------------------------
# engine-level parity: every system that embeds the executor
# ----------------------------------------------------------------------
def _engine_fingerprints(engine, batches):
    out = []
    for batch in batches:
        r = engine.process_batch(batch)
        out.append(
            {
                "delta": r.delta_count,
                "stats": (
                    r.match_stats.signed_count,
                    r.match_stats.embeddings_found,
                    r.match_stats.roots_processed,
                    r.match_stats.tree_nodes,
                ),
                "bytes": {c.value: v
                          for c, v in r.match_counters.bytes_by_channel.items()},
                "tx": {c.value: v
                       for c, v in r.match_counters.transactions_by_channel.items()},
                "compute": r.match_counters.compute_ops,
                "output": r.match_counters.output_embeddings,
                "match_ns": r.breakdown.match_ns,
            }
        )
    return out


def _workload(seed=9, n=500):
    g = powerlaw_graph(n, 5.0, max_degree=40, num_labels=3, seed=seed)
    return derive_stream(g, num_updates=64, batch_size=32, seed=seed + 1)


@pytest.mark.parametrize("system_name", ["GCSM", "ZC", "UM", "Naive", "CPU",
                                         "VSGM", "RapidFlow"])
def test_systems_bit_identical(system_name):
    from repro.core.baselines import make_system

    g0, batches = _workload()
    query = query_by_name("Q1")
    runs = {}
    for executor in EXECUTORS:
        engine = make_system(system_name, g0, query, executor=executor)
        runs[executor] = _engine_fingerprints(engine, batches)
    assert runs["frontier"] == runs["recursive"]


def test_multigpu_engine_bit_identical():
    from repro.multigpu import MultiGpuEngine

    g0, batches = _workload(seed=13)
    query = query_by_name("Q1")
    runs = {}
    for executor in EXECUTORS:
        engine = MultiGpuEngine(
            g0, query, devices=2, partitioner="hash", executor=executor,
        )
        runs[executor] = _engine_fingerprints(engine, batches)
    assert runs["frontier"] == runs["recursive"]


def test_multiquery_engine_bit_identical():
    from repro.core.multiquery import MultiQueryEngine

    g0, batches = _workload(seed=17)
    queries = [query_by_name("Q1"), query_by_name("Q2")]
    runs = {}
    for executor in EXECUTORS:
        engine = MultiQueryEngine(g0, queries, executor=executor)
        out = []
        for batch in batches:
            r = engine.process_batch(batch)
            out.append(
                (
                    dict(r.delta_counts),
                    {c.value: v
                     for c, v in r.match_counters.bytes_by_channel.items()},
                    r.match_counters.compute_ops,
                    r.match_counters.output_embeddings,
                    r.breakdown.match_ns,
                )
            )
        runs[executor] = out
    assert runs["frontier"] == runs["recursive"]


def test_initial_match_identical():
    from repro.core.engine import GCSMEngine

    g = powerlaw_graph(300, 4.0, max_degree=25, num_labels=2, seed=23)
    counts = {}
    for executor in EXECUTORS:
        engine = GCSMEngine(g, query_by_name("Q1"), executor=executor)
        counts[executor] = engine.initial_match()
    assert counts["frontier"] == counts["recursive"]
