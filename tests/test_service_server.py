"""Service layer: queues, admission, scheduling, metrics, CLI."""

import json

import pytest

from repro.bench.harness import run_service
from repro.cli import main
from repro.service import (
    ADMISSION_POLICIES,
    ARRIVAL_PROCESSES,
    SCHEDULERS,
    LatencyStats,
    MatchService,
    QueueFullError,
    ServiceReport,
    TenantQueue,
    make_tenant_workloads,
)

# small, fast workloads for every service test
WL = dict(num_batches=3, batch_size=8, graph_size=24, avg_degree=5.0)


def tiny_workloads(num_tenants=2, *, rate_per_sec=50.0, arrival="poisson",
                   seed=0, **kwargs):
    merged = {**WL, **kwargs}
    return make_tenant_workloads(
        num_tenants, rate_per_sec=rate_per_sec, arrival=arrival,
        seed=seed, **merged,
    )


def run(workloads, **kwargs):
    kwargs.setdefault("threaded", False)
    return MatchService(workloads, **kwargs).run()


class TestTenantQueue:
    def test_fifo_and_capacity(self):
        q = TenantQueue("t", capacity=2)
        q.push(1.0, 0)
        q.push(2.0, 1)
        assert len(q) == 2 and q.full
        with pytest.raises(QueueFullError) as exc:
            q.push(3.0, 2)
        assert exc.value.tenant == "t" and exc.value.capacity == 2
        assert q.pop() == (1.0, 0)
        assert q.shed_oldest() == (2.0, 1)
        with pytest.raises(ValueError):
            q.pop()

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TenantQueue("t", capacity=0)


class TestWorkloads:
    def test_deterministic_given_seed(self):
        a = tiny_workloads(seed=7)
        b = tiny_workloads(seed=7)
        for wa, wb in zip(a, b):
            assert wa.arrival_ns == wb.arrival_ns
            assert wa.query.name == wb.query.name
            assert [x.edges.tolist() for x in wa.batches] == \
                [x.edges.tolist() for x in wb.batches]
        c = tiny_workloads(seed=8)
        assert a[0].arrival_ns != c[0].arrival_ns

    def test_priorities_default_descending(self):
        wls = tiny_workloads(3)
        assert [w.priority for w in wls] == [2, 1, 0]
        custom = tiny_workloads(2, priorities=[5, 9])
        assert [w.priority for w in custom] == [5, 9]
        with pytest.raises(ValueError):
            tiny_workloads(2, priorities=[1])

    def test_poisson_arrivals_strictly_increase(self):
        (w,) = tiny_workloads(1, num_batches=6)
        assert len(w.arrival_ns) == 6
        assert all(b > a for a, b in zip(w.arrival_ns, w.arrival_ns[1:]))

    def test_bursty_arrivals_are_clustered(self):
        (w,) = tiny_workloads(
            1, arrival="bursty", num_batches=8, rate_per_sec=10.0,
        )
        gaps = [b - a for a, b in zip(w.arrival_ns, w.arrival_ns[1:])]
        # intra-burst spacing is exactly 1 us
        assert sum(1 for g in gaps if g == pytest.approx(1_000.0)) >= 4

    def test_closed_loop_trace_has_single_seed_arrival(self):
        (w,) = tiny_workloads(1, arrival="closed", num_batches=5)
        assert w.num_batches == 5
        assert len(w.arrival_ns) == 1

    def test_unknown_arrival_rejected(self):
        with pytest.raises(ValueError):
            tiny_workloads(1, arrival="uniform")
        assert set(ARRIVAL_PROCESSES) == {"poisson", "bursty", "closed"}


class TestAdmission:
    def overload(self, **kwargs):
        # everything arrives at ~t=0: queue_capacity=1 forces the policy to act
        wls = tiny_workloads(2, rate_per_sec=1e9, num_batches=4)
        return run(wls, queue_capacity=1, **kwargs)

    def test_reject_drops_arrivals(self):
        report = self.overload(admission="reject")
        rejected = sum(t["rejected"] for t in report.tenants)
        assert rejected > 0
        for t in report.tenants:
            assert t["shed"] == 0
            assert t["completed"] + t["rejected"] == t["arrived"]

    def test_shed_oldest_evicts_queue_head(self):
        report = self.overload(admission="shed-oldest")
        shed = sum(t["shed"] for t in report.tenants)
        assert shed > 0
        for t in report.tenants:
            assert t["rejected"] == 0
            assert t["completed"] + t["shed"] == t["arrived"]
            assert t["shed_rate"] == pytest.approx(t["shed"] / t["arrived"])

    def test_backpressure_stalls_but_never_drops(self):
        report = self.overload(admission="backpressure")
        for t in report.tenants:
            assert t["rejected"] == 0 and t["shed"] == 0
            assert t["completed"] == 4  # every batch eventually served
        assert sum(t["stall_ns"] for t in report.tenants) > 0

    def test_ample_capacity_never_triggers_admission(self):
        for admission in ADMISSION_POLICIES:
            report = run(
                tiny_workloads(2, rate_per_sec=1e9, num_batches=4),
                queue_capacity=16, admission=admission,
            )
            assert report.completed == 8
            assert report.max_shed_rate == 0.0


class TestScheduling:
    def test_priority_tenant_waits_less_under_contention(self):
        # one device, simultaneous overload: tenant0 has the highest priority
        wls = tiny_workloads(3, rate_per_sec=1e9, num_batches=4)
        report = run(wls, queue_capacity=8, scheduler="priority",
                     admission="backpressure")
        waits = {t["name"]: t["queue_wait"]["p50_ns"] for t in report.tenants}
        assert waits["tenant0"] < waits["tenant2"]

    def test_fair_round_robin_interleaves(self):
        wls = tiny_workloads(3, rate_per_sec=1e9, num_batches=4)
        report = run(wls, queue_capacity=8, scheduler="fair",
                     admission="backpressure")
        done = [t["completed"] for t in report.tenants]
        assert done == [4, 4, 4]
        # under fair sharing, p50 waits are in the same ballpark for everyone
        waits = [t["queue_wait"]["p50_ns"] for t in report.tenants]
        assert max(waits) < 3.5 * (min(waits) + 1.0)

    def test_more_devices_shrink_makespan(self):
        wls = tiny_workloads(3, rate_per_sec=1e9, num_batches=3)
        one = run(wls, num_devices=1, admission="backpressure",
                  queue_capacity=8)
        wls = tiny_workloads(3, rate_per_sec=1e9, num_batches=3)
        three = run(wls, num_devices=3, admission="backpressure",
                    queue_capacity=8)
        assert three.makespan_ns < one.makespan_ns
        assert one.completed == three.completed == 9

    def test_unknown_scheduler_and_admission_rejected(self):
        wls = tiny_workloads(1)
        with pytest.raises(ValueError):
            MatchService(wls, scheduler="lifo")
        with pytest.raises(ValueError):
            MatchService(wls, admission="drop-newest")
        assert set(SCHEDULERS) == {"fair", "priority"}


class TestClosedLoop:
    def test_completion_driven_arrivals(self):
        wls = tiny_workloads(2, arrival="closed", num_batches=4,
                             think_ns=500.0)
        report = run(wls, queue_capacity=1)
        for t in report.tenants:
            assert t["arrived"] == t["completed"] == 4
            assert t["rejected"] == 0 and t["shed"] == 0
            # at most one outstanding batch: queue depth never exceeds 1
            assert t["queue_depth_max"] <= 1


class TestMetricsAndReport:
    def test_latency_stats_percentiles(self):
        stats = LatencyStats.from_samples(list(map(float, range(1, 101))))
        assert stats.count == 100
        assert stats.p50_ns == pytest.approx(50.5)
        assert stats.p99_ns == pytest.approx(99.01)
        assert stats.max_ns == 100.0
        assert LatencyStats.from_samples([]).count == 0

    def test_report_round_trips_through_json(self, tmp_path):
        report = run(tiny_workloads(2), queue_capacity=8)
        path = tmp_path / "svc.json"
        report.save(str(path))
        loaded = ServiceReport.load(str(path))
        assert loaded.to_dict() == report.to_dict()
        # the file is plain JSON with the headline aggregates materialized
        raw = json.loads(path.read_text())
        assert raw["sustained_edges_per_sec"] == report.sustained_edges_per_sec
        assert raw["completed"] == report.completed

    def test_run_is_deterministic_modulo_wall_clock(self):
        a = run(tiny_workloads(2, seed=5), seed=5).to_dict()
        b = run(tiny_workloads(2, seed=5), seed=5).to_dict()
        a.pop("wall_clock_s"), b.pop("wall_clock_s")
        assert a == b

    def test_pipeline_schedule_aggregated_in_report(self):
        report = run(tiny_workloads(2), pipeline=True)
        assert report.schedule is not None
        assert report.schedule["makespan_ns"] <= report.schedule["serial_ns"]
        assert report.schedule["speedup"] >= 1.0
        serial = run(tiny_workloads(2), pipeline=False)
        assert serial.schedule is None

    def test_workers_env_recorded(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        report = run(tiny_workloads(1))
        assert report.workers == 3
        assert report.workers_env == "3"
        monkeypatch.delenv("REPRO_WORKERS")
        report = run(tiny_workloads(1))
        assert report.workers_env is None

    def test_counters_totaled_across_tenants(self):
        report = run(tiny_workloads(2))
        assert report.counters  # non-empty summary dict
        assert report.total_edges == sum(
            t["edges_completed"] for t in report.tenants
        )

    def test_slo_rows_sorted_by_tenant(self):
        report = run(tiny_workloads(3))
        rows = report.slo_rows()
        assert [r[0] for r in rows] == ["tenant0", "tenant1", "tenant2"]
        assert len(ServiceReport.SLO_HEADER) == len(rows[0])


class TestHarness:
    def test_run_service_persists_json(self, tmp_path):
        path = tmp_path / "report.json"
        report = run_service(
            2, num_batches=3, batch_size=8, threaded=False,
            json_path=str(path),
            workload_kwargs={"graph_size": 24, "avg_degree": 5.0},
        )
        assert path.exists()
        assert ServiceReport.load(str(path)).completed == report.completed


class TestServeCli:
    ARGS = ["serve", "--tenants", "2", "--batches", "3", "--batch-size", "8"]

    def test_serve_runs_and_prints_summary(self, capsys):
        assert main(self.ARGS + ["--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "service: 2 tenants x 3 batches" in out
        assert "sustained" in out
        assert "pipeline overlap" in out

    def test_serve_report_prints_slo_table(self, capsys, tmp_path):
        path = tmp_path / "svc.json"
        assert main(self.ARGS + ["--report", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "per-tenant SLOs" in out
        assert "p99 ms" in out
        assert path.exists()

    def test_serve_no_pipeline_omits_overlap(self, capsys):
        assert main(self.ARGS + ["--no-pipeline"]) == 0
        out = capsys.readouterr().out
        assert "pipeline overlap" not in out

    def test_serve_max_shed_gate_fails_under_overload(self, capsys):
        rc = main(self.ARGS + [
            "--rate", "1000000000", "--admission", "shed-oldest",
            "--queue-capacity", "1", "--max-shed", "0.0",
        ])
        assert rc == 1
        err = capsys.readouterr().err
        assert "SLO VIOLATION" in err

    def test_serve_max_shed_gate_passes_when_unloaded(self):
        assert main(self.ARGS + ["--rate", "1", "--max-shed", "0.0"]) == 0

    def test_serve_invalid_config_exits_2(self, capsys):
        assert main(self.ARGS + ["--queue-capacity", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_serve_parser_choices(self):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["serve", "--scheduler", "random"])
        with pytest.raises(SystemExit):
            parser.parse_args(["serve", "--admission", "drop"])
        args = parser.parse_args(["serve", "--arrival", "bursty", "--burst", "2"])
        assert args.arrival == "bursty" and args.burst == 2 and args.pipeline
