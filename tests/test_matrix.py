"""Tests for the factorial scenario-matrix runner and its regression gate."""

import copy
import json

import pytest

from repro.bench import matrix
from repro.bench.harness import clear_caches
from repro.cli import main

TINY_SPEC = {
    "name": "tiny",
    "seed": 0,
    "factors": {
        "dataset": ["AZ"],
        "query": ["Q1"],
        "batch_size": [16],
        "num_batches": [1],
    },
}


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestParsePredicate:
    def test_forms(self):
        assert matrix.parse_predicate("w>=0.3") == (0.3, 1.0)
        assert matrix.parse_predicate("w<=0.7") == (0.0, 0.7)
        assert matrix.parse_predicate("0.2<=w<=0.8") == (0.2, 0.8)
        assert matrix.parse_predicate(" 0.2 <= w <= 0.8 ") == (0.2, 0.8)

    def test_rejects_garbage(self):
        for bad in ("w=0.5", "0.9<=w<=0.1", "w>=x", "nope"):
            with pytest.raises(ValueError):
                matrix.parse_predicate(bad)


class TestScenarioSpec:
    def test_unknown_factor_rejected(self):
        with pytest.raises(ValueError, match="unknown factors"):
            matrix.ScenarioSpec(name="x", factors={"wat": (1,)})

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError, match="invalid level"):
            matrix.ScenarioSpec(name="x", factors={"executor": ("warp",)})
        with pytest.raises(ValueError, match="invalid level"):
            matrix.ScenarioSpec(name="x", factors={"batch_size": (0,)})
        with pytest.raises(ValueError):
            matrix.ScenarioSpec(name="x", factors={"query": ("rulebook:Q9",)})

    def test_empty_levels_rejected(self):
        with pytest.raises(ValueError, match="no levels"):
            matrix.ScenarioSpec(name="x", factors={"executor": ()})

    def test_bad_sample_rejected(self):
        with pytest.raises(ValueError, match="sample"):
            matrix.ScenarioSpec(name="x", sample=0.0)

    def test_round_trips_through_dict(self):
        spec = matrix.ScenarioSpec.from_dict(TINY_SPEC)
        again = matrix.ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec


class TestExpansion:
    def test_full_factorial_with_pruning(self):
        spec = matrix.ScenarioSpec(
            name="x",
            factors={
                "executor": ("frontier", "recursive"),
                "conflict_mode": ("strict", "coalesce"),
                "update_mix": ("mixed", "adversarial"),
            },
        )
        cells, pruned = matrix.expand_cells(spec)
        # 2*2*2 = 8 combos; adversarial x strict is invalid => 2 pruned
        assert len(cells) == 6
        assert len(pruned) == 2
        assert all("strict" in reason for _, reason in pruned)

    def test_prunes_fleet_contradictions(self):
        spec = matrix.ScenarioSpec(
            name="x",
            factors={
                "system": ("GCSM", "ZC"),
                "devices": (None, 2),
                "partitioner": ("hash", "mincut"),
            },
        )
        cells, pruned = matrix.expand_cells(spec)
        for cell in cells:
            if cell["devices"] is not None:
                assert cell["system"] == "GCSM"
            else:
                assert cell["partitioner"] == "hash"
        assert len(cells) + len(pruned) == 8

    def test_sampling_is_deterministic_and_sized(self):
        spec = matrix.ScenarioSpec(
            name="x",
            factors={
                "executor": ("frontier", "recursive"),
                "update_mix": ("mixed", "churn", "insert-heavy", "delete-heavy"),
            },
        )
        a, _ = matrix.expand_cells(spec, sample=0.5)
        b, _ = matrix.expand_cells(spec, sample=0.5)
        assert a == b
        assert len(a) == 4  # round(0.5 * 8)
        full, _ = matrix.expand_cells(spec)
        ids = {matrix.cell_id(c) for c in full}
        assert {matrix.cell_id(c) for c in a} <= ids

    def test_filter_cells(self):
        spec = matrix.ScenarioSpec(
            name="x", factors={"executor": ("frontier", "recursive"),
                               "window": (None, 2)},
        )
        cells, _ = matrix.expand_cells(spec)
        kept = matrix.filter_cells(cells, {"executor": "recursive", "window": "-"})
        assert len(kept) == 1
        assert kept[0]["executor"] == "recursive"
        assert kept[0]["window"] is None
        with pytest.raises(ValueError, match="unknown filter factor"):
            matrix.filter_cells(cells, {"nope": "1"})

    def test_cell_id_covers_every_factor(self):
        spec = matrix.ScenarioSpec(name="x")
        cells, _ = matrix.expand_cells(spec)
        assert len(cells) == 1
        cid = matrix.cell_id(cells[0])
        for factor in matrix.FACTOR_NAMES:
            assert f"{factor}=" in cid


class TestRunMatrix:
    def test_records_and_round_trip(self, tmp_path):
        spec = matrix.ScenarioSpec.from_dict(TINY_SPEC)
        traj = matrix.run_matrix(spec)
        assert traj["schema_version"] == matrix.SCHEMA_VERSION
        assert traj["cells_run"] == 1
        rec = traj["records"][0]
        assert rec["cell_id"] == matrix.cell_id(
            dict(matrix.FACTOR_DEFAULTS, batch_size=16, num_batches=1)
        )
        m = rec["metrics"]
        assert m["total_ns"] > 0 and m["compute_ops"] > 0
        assert m["batch_size_requested"] == 16
        path = tmp_path / "traj.json"
        matrix.save_trajectory(traj, path)
        assert matrix.load_trajectory(path) == json.loads(path.read_text())

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema_version": 0, "records": []}))
        with pytest.raises(ValueError, match="schema"):
            matrix.load_trajectory(path)

    def test_rerun_is_deterministic(self):
        spec = matrix.ScenarioSpec.from_dict(TINY_SPEC)
        a = matrix.run_matrix(spec)
        clear_caches()
        b = matrix.run_matrix(spec)
        ma = dict(a["records"][0]["metrics"])
        mb = dict(b["records"][0]["metrics"])
        ma.pop("wall_clock_s")
        mb.pop("wall_clock_s")
        assert ma == mb


class TestCompareTrajectories:
    def _trajectory(self):
        spec = matrix.ScenarioSpec.from_dict(TINY_SPEC)
        return matrix.run_matrix(spec)

    def test_identical_passes(self):
        traj = self._trajectory()
        report = matrix.compare_trajectories(traj, copy.deepcopy(traj))
        assert report.ok
        assert report.compared == 1
        assert "OK" in report.describe()

    def test_injected_regression_fails(self):
        traj = self._trajectory()
        baseline = copy.deepcopy(traj)
        # shrink the baseline so the fresh run looks 100% slower (>= 20%)
        baseline["records"][0]["metrics"]["match_ns"] *= 0.5
        report = matrix.compare_trajectories(traj, baseline, max_regress_pct=20.0)
        assert not report.ok
        assert any(m == "match_ns" for _, m, *_ in report.regressions)
        assert "REGRESSION" in report.describe()
        # a looser tolerance lets the same pair through
        assert matrix.compare_trajectories(traj, baseline, max_regress_pct=150.0).ok

    def test_exact_metric_must_match(self):
        traj = self._trajectory()
        baseline = copy.deepcopy(traj)
        baseline["records"][0]["metrics"]["delta_total"] += 1
        report = matrix.compare_trajectories(traj, baseline)
        assert not report.ok
        assert report.mismatches
        assert "MISMATCH" in report.describe()

    def test_improvements_and_new_cells_pass(self):
        traj = self._trajectory()
        baseline = copy.deepcopy(traj)
        baseline["records"][0]["metrics"]["total_ns"] *= 10  # we got faster
        baseline["records"].append(
            {"cell_id": "retired-cell", "metrics": {"total_ns": 1.0}}
        )
        report = matrix.compare_trajectories(traj, baseline)
        assert report.ok
        assert report.missing_cells == ["retired-cell"]


class TestMatrixCLI:
    def _write_spec(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(TINY_SPEC))
        return str(path)

    def test_list_mode(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        assert main(["matrix", "--spec", spec, "--list"]) == 0
        out = capsys.readouterr().out
        assert "1 cells to run" in out

    def test_run_gate_clean_then_regressed(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        out_path = tmp_path / "BENCH_matrix.json"
        assert main(["matrix", "--spec", spec, "--out", str(out_path)]) == 0
        # gating a fresh run against its own trajectory passes
        assert main(["matrix", "--spec", spec, "--baseline", str(out_path)]) == 0
        # inject a >= 20% simulated-time regression into the baseline
        traj = json.loads(out_path.read_text())
        for rec in traj["records"]:
            rec["metrics"]["total_ns"] *= 0.5
        out_path.write_text(json.dumps(traj))
        capsys.readouterr()
        assert main(["matrix", "--spec", spec, "--baseline", str(out_path),
                     "--max-regress", "20"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_usage_errors(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        assert main(["matrix", "--spec", str(tmp_path / "nope.json")]) == 2
        assert main(["matrix", "--spec", spec, "--filter", "bogus"]) == 2
        assert main(["matrix", "--spec", spec, "--filter", "wat=1"]) == 2
        bad = tmp_path / "bad_baseline.json"
        bad.write_text("{}")
        assert main(["matrix", "--spec", spec, "--baseline", str(bad)]) == 2
