"""Tests for QueryGraph and the query catalog."""

import networkx as nx
import pytest

from repro.query import QUERIES, QueryGraph, WILDCARD_LABEL, motifs, query_by_name
from repro.query.catalog import QUERY_ORDER, all_motifs_3_4_5


def triangle(labels=None):
    return QueryGraph(3, [(0, 1), (1, 2), (0, 2)], labels, name="triangle")


class TestQueryGraph:
    def test_basic_properties(self):
        q = triangle([0, 1, 2])
        assert q.num_vertices == 3
        assert q.num_edges == 3
        assert q.degree(0) == 2
        assert q.max_degree() == 2
        assert q.neighbors(1) == {0, 2}
        assert q.label(2) == 2
        assert q.is_labeled()

    def test_wildcard_default(self):
        q = triangle()
        assert not q.is_labeled()
        assert q.label(0) == WILDCARD_LABEL

    def test_edge_index_stable_and_symmetric(self):
        q = QueryGraph(4, [(0, 1), (2, 1), (2, 3)])
        assert q.edge_index(0, 1) == 0
        assert q.edge_index(1, 2) == 1
        assert q.edge_index(2, 1) == 1
        assert q.edge_index(3, 2) == 2
        with pytest.raises(KeyError):
            q.edge_index(0, 3)

    def test_rejects_disconnected(self):
        with pytest.raises(ValueError):
            QueryGraph(4, [(0, 1), (2, 3)])

    def test_rejects_duplicates_and_loops(self):
        with pytest.raises(ValueError):
            QueryGraph(3, [(0, 1), (1, 0), (1, 2)])
        with pytest.raises(ValueError):
            QueryGraph(3, [(0, 0), (0, 1), (1, 2)])

    def test_networkx_roundtrip(self):
        q = QUERIES["Q3"]
        q2 = QueryGraph.from_networkx(q.to_networkx(), name="Q3")
        assert q2.num_vertices == q.num_vertices
        assert set(q2.edges) == set(q.edges)
        assert q2.labels == q.labels

    def test_diameter(self):
        assert triangle().diameter() == 1
        path = QueryGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert path.diameter() == 3

    def test_relabeled(self):
        q = triangle()
        q2 = q.relabeled([1, 1, 2], name="t2")
        assert q2.labels == (1, 1, 2)
        assert q2.edges == q.edges
        assert q2.name == "t2"

    def test_equality_and_hash(self):
        assert triangle([0, 1, 2]) == triangle([0, 1, 2])
        assert triangle([0, 1, 2]) != triangle([0, 1, 1])
        assert len({triangle([0, 1, 2]), triangle([0, 1, 2])}) == 1


class TestCatalog:
    def test_six_queries_sizes(self):
        assert QUERY_ORDER == ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]
        sizes = [QUERIES[n].num_vertices for n in QUERY_ORDER]
        assert sizes == [5, 5, 6, 6, 7, 7]  # paper: "size-5 to size-7"
        assert all(QUERIES[n].is_labeled() for n in QUERY_ORDER)

    def test_query_by_name(self):
        assert query_by_name("Q2") is QUERIES["Q2"]
        with pytest.raises(KeyError):
            query_by_name("Q9")

    def test_motif_counts_exact(self):
        # known counts of connected graphs by size
        assert len(motifs(3)) == 2
        assert len(motifs(4)) == 6
        assert len(motifs(5)) == 21
        assert len(all_motifs_3_4_5()) == 29

    def test_motifs_wildcard_and_connected(self):
        for q in all_motifs_3_4_5():
            assert not q.is_labeled()
            assert nx.is_connected(q.to_networkx())

    def test_motifs_pairwise_nonisomorphic(self):
        for size in (3, 4, 5):
            ms = motifs(size)
            for i in range(len(ms)):
                for j in range(i + 1, len(ms)):
                    assert not nx.is_isomorphic(ms[i].to_networkx(), ms[j].to_networkx())

    def test_motif_size_bounds(self):
        with pytest.raises(ValueError):
            motifs(1)
        with pytest.raises(ValueError):
            motifs(8)
