"""Aggregate-invariant pre-filter: exactness, maintenance, and skip levels.

The contract under test (see ``docs/prefilter.md``): with
``prefilter="invariant"`` every engine produces **bit-identical** ΔM,
signed counts, embedding counts, and sink emission order versus
``prefilter="off"`` on any stream — certified skips remove only provably
dead work — while the audit identity

    roots_processed(on) + roots_skipped(on) == roots_processed(off)

holds for every filter-free engine (RapidFlow's candidate filters shrink
roots before the prefilter mask, so it keeps the relaxed inequalities).
The index itself must stay consistent with a from-scratch rebuild after
every batch, under delete-heavy and churn streams in all conflict modes.
"""

import numpy as np
import pytest

from repro.core.baselines import make_system
from repro.core.engine import GCSMEngine
from repro.core.multiquery import MultiQueryEngine
from repro.core.prefilter import (
    InvariantIndex,
    PrefilterStats,
    QueryRequirement,
    normalize_prefilter,
)
from repro.core.validation import (
    DEFAULT_FUZZ_SYSTEMS,
    _parse_system_spec,
    fuzz_verify,
    generate_adversarial_stream,
    verify_rulebook,
    verify_stream,
)
from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.generators import erdos_renyi
from repro.graphs.static_graph import StaticGraph
from repro.graphs.stream import UpdateBatch, derive_stream
from repro.gpu.clock import PIPELINE_STAGES, TimeBreakdown
from repro.query import QueryGraph

TRIANGLE = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], [0, 1, 2], name="tri012")
PATH = QueryGraph(3, [(0, 1), (1, 2)], [0, 0, 1], name="path001")
EDGE = QueryGraph(2, [(0, 1)], [2, 2], name="edge22")


def adversarial(seed, *, num_batches=6, batch_size=24):
    g0 = erdos_renyi(48, 7.0, num_labels=3, seed=seed)
    return g0, generate_adversarial_stream(
        g0, num_batches=num_batches, batch_size=batch_size, seed=seed + 1
    )


def run_pair(system, g0, query, batches, *, conflict_mode="coalesce", **kw):
    """Drive (prefilter=on, prefilter=off) twins and return result lists."""
    on = make_system(
        system, g0, query, seed=3, conflict_mode=conflict_mode,
        prefilter="invariant", **kw,
    )
    off = make_system(
        system, g0, query, seed=3, conflict_mode=conflict_mode, **kw
    )
    return (
        [on.process_batch(b) for b in batches],
        [off.process_batch(b) for b in batches],
        on,
    )


class TestNormalize:
    def test_aliases(self):
        assert normalize_prefilter(None) == "off"
        assert normalize_prefilter(False) == "off"
        assert normalize_prefilter("off") == "off"
        assert normalize_prefilter(True) == "invariant"
        assert normalize_prefilter("on") == "invariant"
        assert normalize_prefilter("invariant") == "invariant"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            normalize_prefilter("bloom")


class TestIndexMaintenance:
    """Incremental maintenance must equal a from-scratch rebuild —
    checked after *every* batch, streams chosen per conflict mode."""

    @pytest.mark.parametrize("mode", ["coalesce", "ignore"])
    def test_adversarial_stream_stays_consistent(self, mode):
        g0, batches = adversarial(11)
        graph = DynamicGraph(g0)
        index = InvariantIndex(graph)
        for batch in batches:
            eff = graph.apply_batch(batch, mode=mode)
            index.apply_batch(eff)
            graph.reorganize()
            index.close_batch()
            index.assert_consistent()

    def test_clean_stream_strict_mode(self):
        g = erdos_renyi(60, 6.0, num_labels=3, seed=5)
        g0, batches = derive_stream(g, update_fraction=0.5, batch_size=16, seed=5)
        graph = DynamicGraph(g0)
        index = InvariantIndex(graph)
        for batch in batches[:6]:
            eff = graph.apply_batch(batch, mode="strict")
            index.apply_batch(eff)
            graph.reorganize()
            index.close_batch()
            index.assert_consistent()

    def test_delete_heavy_churn(self):
        """Deletes dominate; the overlay grows and must drop cleanly."""
        g = erdos_renyi(40, 8.0, num_labels=2, seed=9)
        graph = DynamicGraph(g)
        index = InvariantIndex(graph)
        rng = np.random.default_rng(9)
        for _ in range(5):
            edges = graph.snapshot().edge_array()
            take = edges[rng.choice(edges.shape[0], size=12, replace=False)]
            signs = -np.ones(take.shape[0], dtype=np.int64)
            signs[:3] = 1  # churn back a few
            eff = graph.apply_batch(UpdateBatch(take, signs), mode="coalesce")
            index.apply_batch(eff)
            graph.reorganize()
            index.close_batch()
            index.assert_consistent()

    def test_requirement_wildcards_only_count_labeled(self):
        q = QueryGraph(3, [(0, 1), (1, 2)], [0, -1, 1], name="wild")
        req = QueryRequirement(q)
        # u1 is wildcard-labeled but its *requirement* still sees both
        # labeled neighbors; u0's single neighbor is the wildcard -> no
        # label constraint, only the degree bound
        assert req.adj_need[0] == {}
        assert req.deg_need[0] == 1
        assert req.adj_need[1] == {0: 1, 1: 1}


class TestEngineParity:
    """Skip levels (a) + (b): bit-identical results, shrunken work."""

    @pytest.mark.parametrize("mode", ["coalesce", "ignore"])
    @pytest.mark.parametrize("query", [TRIANGLE, PATH, EDGE], ids=lambda q: q.name)
    def test_gcsm_parity_and_audit_identity(self, query, mode):
        g0, batches = adversarial(17)
        on = GCSMEngine(g0, query, seed=3, conflict_mode=mode, prefilter="on")
        off = GCSMEngine(g0, query, seed=3, conflict_mode=mode)
        for batch in batches:
            r_on = on.process_batch(batch)
            r_off = off.process_batch(batch)
            assert r_on.delta_count == r_off.delta_count
            s_on, s_off = r_on.match_stats, r_off.match_stats
            assert s_on.signed_count == s_off.signed_count
            assert s_on.embeddings_found == s_off.embeddings_found
            assert s_on.roots_processed + s_on.roots_skipped == s_off.roots_processed
            assert r_on.prefilter is not None and r_on.prefilter.enabled
            assert r_on.prefilter.maintenance_ns > 0
            assert r_off.prefilter is None
            on.prefilter_index.assert_consistent()

    @pytest.mark.parametrize("executor", ["frontier", "recursive"])
    def test_parity_across_executors(self, executor):
        g0, batches = adversarial(23, num_batches=4)
        on_res, off_res, _ = run_pair(
            "GCSM", g0, TRIANGLE, batches, executor=executor
        )
        for r_on, r_off in zip(on_res, off_res):
            assert r_on.delta_count == r_off.delta_count

    def test_delete_only_roots_need_the_overlay(self):
        """A deleted triangle's ΔM = -1 must survive the prefilter: the
        root endpoints' post-batch adjacency no longer dominates the query,
        only the union overlay does."""
        labels = np.array([0, 1, 2, 0], dtype=np.int64)
        edges = np.array([(0, 1), (1, 2), (0, 2)], dtype=np.int64)
        g0 = StaticGraph.from_edges(4, edges, labels)
        batch = UpdateBatch(
            np.array([(0, 1)], dtype=np.int64), np.array([-1], dtype=np.int64)
        )
        on = GCSMEngine(g0, TRIANGLE, seed=0, prefilter="on")
        off = GCSMEngine(g0, TRIANGLE, seed=0)
        r_on, r_off = on.process_batch(batch), off.process_batch(batch)
        assert r_on.delta_count == r_off.delta_count == -1
        assert r_on.match_stats.signed_count == -1

    def test_batch_level_skip_saves_the_pipeline(self):
        """Inserts that can never touch the query skip estimate/pack/match
        entirely, and the skip is visible in stats and the breakdown."""
        n = 90
        labels = np.array([i % 3 for i in range(n)], dtype=np.int64)
        g0 = StaticGraph.from_edges(
            n, np.array([(i, i + 1) for i in range(0, n - 1, 3)]), labels
        )
        rare = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], [2, 2, 2], name="rare")
        on = GCSMEngine(g0, rare, seed=0, prefilter="on")
        off = GCSMEngine(g0, rare, seed=0)
        e = np.array([(i, i + 10) for i in range(0, 9, 3)], dtype=np.int64)
        batch = UpdateBatch(e, np.ones(e.shape[0], dtype=np.int64))
        r_on, r_off = on.process_batch(batch), off.process_batch(batch)
        assert r_on.delta_count == r_off.delta_count == 0
        assert r_on.prefilter.batches_skipped == 1
        assert r_on.match_stats.roots_skipped == r_off.match_stats.roots_processed
        assert r_on.breakdown.estimate_ns == 0.0
        assert r_on.breakdown.match_ns == 0.0
        assert r_on.breakdown.prefilter_ns > 0.0
        assert r_on.cache_bytes == 0 and r_on.estimation is None
        # the store still advanced identically
        assert np.array_equal(
            on.snapshot().edge_array(), off.snapshot().edge_array()
        )

    def test_sink_order_identical(self):
        g0, batches = adversarial(29, num_batches=4)
        seen_on, seen_off = [], []
        on = GCSMEngine(g0, TRIANGLE, seed=3, prefilter="on")
        off = GCSMEngine(g0, TRIANGLE, seed=3)
        for batch in batches:
            # engines expose sinks through match_batch in multiquery only;
            # single-query emission order is covered by embeddings_found +
            # the multiquery sink test — here assert counters stay exact
            r_on, r_off = on.process_batch(batch), off.process_batch(batch)
            seen_on.append(r_on.match_stats.embeddings_found)
            seen_off.append(r_off.match_stats.embeddings_found)
        assert seen_on == seen_off


class TestAllSystems:
    @pytest.mark.parametrize(
        "system", ["GCSM", "Pipelined", "ZC", "UM", "Naive", "VSGM", "CPU"]
    )
    def test_filter_free_systems_keep_the_identity(self, system):
        g0, batches = adversarial(31, num_batches=4)
        on_res, off_res, on = run_pair(system, g0, TRIANGLE, batches)
        for r_on, r_off in zip(on_res, off_res):
            assert r_on.delta_count == r_off.delta_count
            s_on, s_off = r_on.match_stats, r_off.match_stats
            assert s_on.signed_count == s_off.signed_count
            assert s_on.roots_processed + s_on.roots_skipped == s_off.roots_processed
        assert on.prefilter_name == "invariant"

    def test_rapidflow_relaxed_identity(self):
        g0, batches = adversarial(37, num_batches=4)
        on_res, off_res, _ = run_pair("RapidFlow", g0, TRIANGLE, batches)
        for r_on, r_off in zip(on_res, off_res):
            assert r_on.delta_count == r_off.delta_count
            s_on, s_off = r_on.match_stats, r_off.match_stats
            # RapidFlow's candidate filters shrink roots before the
            # prefilter mask; skip accounting is pre-filter, so only the
            # inequalities are guaranteed
            assert s_on.roots_processed + s_on.roots_skipped >= s_off.roots_processed
            assert s_on.roots_processed <= s_off.roots_processed

    def test_multigpu_parity(self):
        from repro.multigpu.engine import MultiGpuEngine

        g0, batches = adversarial(41, num_batches=4)
        single = GCSMEngine(g0, TRIANGLE, seed=3, prefilter="on")
        fleet1 = MultiGpuEngine(g0, TRIANGLE, devices=1, seed=3, prefilter="on")
        fleet2 = MultiGpuEngine(g0, TRIANGLE, devices=2, seed=3, prefilter="on")
        off2 = MultiGpuEngine(g0, TRIANGLE, devices=2, seed=3)
        for batch in batches:
            r1 = single.process_batch(batch)
            f1 = fleet1.process_batch(batch)
            f2 = fleet2.process_batch(batch)
            o2 = off2.process_batch(batch)
            assert f1.delta_count == r1.delta_count == f2.delta_count
            assert o2.delta_count == f2.delta_count
            assert vars(f1.match_stats) == vars(r1.match_stats)
            # owner-routed shard masking partitions the skip accounting
            assert (
                f2.match_stats.roots_processed + f2.match_stats.roots_skipped
                == o2.match_stats.roots_processed
            )


class TestPipelined:
    def test_stream_parity_with_serial(self):
        from repro.service.pipeline import PipelinedEngine

        g0, batches = adversarial(43, num_batches=6)
        serial = GCSMEngine(g0, TRIANGLE, seed=3, prefilter="on")
        piped = PipelinedEngine(g0, TRIANGLE, seed=3, prefilter="on")
        serial_res = [serial.process_batch(b) for b in batches]
        piped_res = piped.process_stream(batches)
        for r_s, r_p in zip(serial_res, piped_res):
            assert r_p.delta_count == r_s.delta_count
            assert vars(r_p.match_stats) == vars(r_s.match_stats)
            assert r_p.prefilter is not None and r_s.prefilter is not None
            assert r_p.prefilter.to_dict() == r_s.prefilter.to_dict()
        report = piped.schedule_report()
        assert report.makespan_ns > 0

    def test_skip_batches_drain_in_order(self):
        """A certified skip between dense batches must not reorder results."""
        from repro.service.pipeline import PipelinedEngine

        n = 90
        labels = np.array([i % 3 for i in range(n)], dtype=np.int64)
        g0 = StaticGraph.from_edges(
            n, np.array([(i, i + 1) for i in range(0, n - 1, 3)]), labels
        )
        rare = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], [2, 2, 2], name="rare")
        mk = lambda rows: UpdateBatch(
            np.array(rows, dtype=np.int64),
            np.ones(len(rows), dtype=np.int64),
        )
        stream = [
            mk([(2, 5), (5, 8), (2, 8)]),          # label-2 triangle: +1
            mk([(0, 10), (3, 13)]),                # label 0->1: certified skip
            mk([(8, 11), (2, 11)]),                # extends label-2 matches
        ]
        piped = PipelinedEngine(g0, rare, seed=0, prefilter="on")
        serial = GCSMEngine(g0, rare, seed=0, prefilter="on")
        piped_res = piped.process_stream(stream)
        serial_res = [serial.process_batch(b) for b in stream]
        assert [r.delta_count for r in piped_res] == [
            r.delta_count for r in serial_res
        ]
        assert piped_res[1].prefilter.batches_skipped == 1


class TestMultiQuery:
    QUERIES = [
        QueryGraph(3, [(0, 1), (1, 2), (0, 2)], [0, 1, 2], name="q_tri_a"),
        QueryGraph(3, [(0, 1), (1, 2), (0, 2)], [1, 2, 0], name="q_tri_b"),
        PATH,
        EDGE,
        QueryGraph(3, [(0, 1), (1, 2), (0, 2)], [2, 2, 2], name="q_tri_rare"),
    ]

    @pytest.mark.parametrize("shared", [True, False], ids=["shared", "independent"])
    def test_rulebook_parity(self, shared):
        g0, batches = adversarial(47, num_batches=5)
        sinks_on = {q.name: [] for q in self.QUERIES}
        sinks_off = {q.name: [] for q in self.QUERIES}
        on = MultiQueryEngine(
            g0, self.QUERIES, seed=3, shared=shared, prefilter="on"
        )
        off = MultiQueryEngine(g0, self.QUERIES, seed=3, shared=shared)
        skipped = 0
        for batch in batches:
            r_on = on.process_batch(
                batch,
                sinks={n: (lambda e, s, n=n: sinks_on[n].append((e, s)))
                       for n in sinks_on},
            )
            r_off = off.process_batch(
                batch,
                sinks={n: (lambda e, s, n=n: sinks_off[n].append((e, s)))
                       for n in sinks_off},
            )
            assert r_on.delta_counts == r_off.delta_counts
            for name in r_on.match_stats:
                s_on, s_off = r_on.match_stats[name], r_off.match_stats[name]
                assert s_on.signed_count == s_off.signed_count
                assert s_on.embeddings_found == s_off.embeddings_found
                if shared:
                    # group-granular masking: the OR keeps at least what
                    # any member's own mask keeps
                    assert (
                        s_on.roots_processed + s_on.roots_skipped
                        >= s_off.roots_processed
                    )
                    assert s_on.roots_processed <= s_off.roots_processed
                else:
                    assert (
                        s_on.roots_processed + s_on.roots_skipped
                        == s_off.roots_processed
                    )
            assert r_on.prefilter is not None
            skipped += r_on.prefilter.queries_skipped
            on.prefilter_index.assert_consistent()
        assert sinks_on == sinks_off  # emission order bit-identical
        assert skipped > 0  # the rare query really was certified away

    def test_whole_rulebook_skip(self):
        n = 90
        labels = np.array([i % 3 for i in range(n)], dtype=np.int64)
        g0 = StaticGraph.from_edges(
            n, np.array([(i, i + 1) for i in range(0, n - 1, 3)]), labels
        )
        tri = lambda name, lab: QueryGraph(
            3, [(0, 1), (1, 2), (0, 2)], list(lab), name=name
        )
        queries = [tri("qa", (0, 1, 2)), tri("qb", (1, 2, 0)), tri("qc", (2, 2, 2))]
        eng = MultiQueryEngine(g0, queries, seed=3, prefilter="on")
        e = np.array([(0, 10), (3, 13), (6, 16)], dtype=np.int64)
        r = eng.process_batch(UpdateBatch(e, np.ones(3, dtype=np.int64)))
        assert r.prefilter.batches_skipped == 1
        assert r.prefilter.queries_skipped == 3  # aliases counted too
        assert r.total_delta == 0
        assert r.estimation is None and r.cache_bytes == 0
        assert all(st.signed_count == 0 for st in r.match_stats.values())
        eng.prefilter_index.assert_consistent()

    def test_verify_rulebook_with_prefilter(self):
        g0, batches = adversarial(53, num_batches=3)
        report = verify_rulebook(
            g0, self.QUERIES, batches, seed=3,
            engine_kwargs={"prefilter": "on"},
        )
        assert report.num_queries == len(self.QUERIES)
        assert report.aliases == {"q_tri_b": "q_tri_a"}


class TestValidationIntegration:
    def test_spec_parsing(self):
        assert _parse_system_spec("GCSM") == ("GCSM", {})
        assert _parse_system_spec("GCSM+prefilter") == (
            "GCSM", {"prefilter": "invariant"}
        )
        assert _parse_system_spec("GCSM+prefilter@2") == (
            "GCSM", {"prefilter": "invariant", "devices": 2}
        )
        assert _parse_system_spec("Pipelined+prefilter") == (
            "Pipelined", {"prefilter": "invariant"}
        )

    def test_default_fuzz_systems_include_prefilter(self):
        assert "GCSM+prefilter" in DEFAULT_FUZZ_SYSTEMS
        assert "Pipelined+prefilter" in DEFAULT_FUZZ_SYSTEMS

    def test_verify_stream_cross_checks_prefilter(self):
        g0, batches = adversarial(59, num_batches=3)
        report = verify_stream(
            ["GCSM", "GCSM+prefilter", "Pipelined+prefilter", "CPU"],
            g0, TRIANGLE, batches, seed=7, conflict_mode="coalesce",
            against_oracle=True, check_invariants=True,
        )
        assert report.num_batches == 3

    def test_small_fuzz(self):
        report = fuzz_verify(
            2, systems=["GCSM", "GCSM+prefilter", "Pipelined+prefilter"],
            seed=99,
        )
        assert report.num_cases == 2


class TestCostModel:
    def test_prefilter_ns_in_totals(self):
        bd = TimeBreakdown(update_ns=1.0, prefilter_ns=2.0, match_ns=3.0)
        assert bd.total_ns == 6.0
        doubled = bd + bd
        assert doubled.prefilter_ns == 4.0
        assert (bd.scaled(3.0)).prefilter_ns == 6.0

    def test_pipeline_stage_declared(self):
        stages = [s.name for s in PIPELINE_STAGES]
        assert "prefilter" in stages
        assert stages.index("prefilter") < stages.index("estimate")

    def test_stats_merge_and_dict(self):
        a = PrefilterStats(batches_skipped=1, roots_skipped=5, maintenance_ns=2.0)
        b = PrefilterStats(roots_skipped=3, queries_skipped=2, maintenance_ns=1.0)
        a.merge(b)
        assert a.to_dict() == {
            "enabled": True,
            "batches_skipped": 1,
            "roots_skipped": 8,
            "queries_skipped": 2,
            "maintenance_ns": 3.0,
        }


class TestHarnessAndRecords:
    def test_run_stream_aggregates_skips(self):
        from repro.bench.harness import clear_caches, run_stream
        from repro.core.results import ExperimentRecord

        clear_caches()
        run = run_stream(
            "GCSM", "AZ", TRIANGLE, batch_size=32, num_batches=2, seed=0,
            prefilter="on",
        )
        assert run.prefilter == "invariant"
        assert run.breakdown.prefilter_ns > 0
        rec = ExperimentRecord.from_run(run)
        d = rec.to_dict()
        assert d["prefilter"] == "invariant"
        assert d["prefilter_ns"] > 0
        assert {"batches_skipped", "roots_skipped", "queries_skipped"} <= set(d)
        assert ExperimentRecord.from_dict(d) == rec

    def test_run_stream_off_leaves_none(self):
        from repro.bench.harness import clear_caches, run_stream

        clear_caches()
        run = run_stream("GCSM", "AZ", TRIANGLE, batch_size=32, num_batches=1)
        assert run.prefilter is None
        assert run.batches_skipped == 0
        assert run.breakdown.prefilter_ns == 0.0
