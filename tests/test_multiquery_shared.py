"""Parity suite for shared trie-based multi-query execution.

The sharing contract (``docs/multiquery.md``): shared trie execution must
be *observationally identical* to running every query independently —
per-query signed ΔM, ``MatchStats``, attributed access counters, and sink
emission order — on clean and adversarial streams, under both executors,
with isomorphic duplicates deduped to a representative.  Only the
engine-level shared counters (and the simulated match time derived from
them) are allowed to differ, and only downward.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frontier import FrontierKernel
from repro.core.multiquery import MultiQueryEngine, split_walk_budget
from repro.core.querytrie import ExecutionTrie, QuerySetMasks
from repro.core.validation import (
    ConsistencyError,
    generate_adversarial_stream,
    verify_rulebook,
)
from repro.graphs.generators import erdos_renyi, powerlaw_graph
from repro.graphs.stream import derive_stream
from repro.query.catalog import QUERIES, QUERY_ORDER
from repro.query.generator import rulebook_suite
from repro.query.pattern import QueryGraph
from repro.query.plan import compile_delta_plans, plan_signature


def _catalog() -> list[QueryGraph]:
    return [QUERIES[n] for n in QUERY_ORDER]


# ----------------------------------------------------------------------
# walk-budget split (satellite regression)
# ----------------------------------------------------------------------
class TestWalkBudgetSplit:
    def test_sums_exactly_for_awkward_sizes(self):
        for total, n in [(1000, 7), (4096, 100), (8192, 3), (999, 998), (64, 63)]:
            counts = split_walk_budget(total, n)
            assert len(counts) == n
            assert sum(counts) == total  # the old // split under-spent
            assert max(counts) - min(counts) <= 1

    def test_degenerate_budget_gives_one_walk_each(self):
        counts = split_walk_budget(10, 64)
        assert counts == [1] * 64

    def test_pooled_estimate_spends_the_configured_budget(self):
        g0 = erdos_renyi(60, 6.0, num_labels=3, seed=0)
        queries = rulebook_suite(7, seed=1)
        engine = MultiQueryEngine(g0, queries, num_walks=1000, seed=2)
        batches = generate_adversarial_stream(g0, num_batches=1, seed=3)
        result = engine.process_batch(batches[0])
        assert result.estimation is not None
        # 1000 walks across 7 queries: 142*7 = 994 under the old floor split
        assert result.estimation.num_walks == 1000


# ----------------------------------------------------------------------
# randomized shared-vs-independent parity
# ----------------------------------------------------------------------
class TestSharedParity:
    def test_catalog_rulebook_clean_stream(self):
        g = powerlaw_graph(1_500, 8.0, max_degree=60, num_labels=3, seed=11)
        g0, batches = derive_stream(g, num_updates=96, batch_size=32, seed=11)
        report = verify_rulebook(g0, _catalog(), batches, seed=4)
        assert report.num_queries == 6
        assert "shared trie matches" in report.describe()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_rulebooks_adversarial_streams(self, seed):
        rng = np.random.default_rng(seed)
        g0 = erdos_renyi(
            int(rng.integers(40, 70)), 6.0, num_labels=3,
            seed=np.random.default_rng(seed),
        )
        queries = rulebook_suite(
            int(rng.integers(6, 14)), num_labels=2, seed=seed + 10
        )
        batches = generate_adversarial_stream(
            g0, num_batches=3, batch_size=20, seed=seed + 20
        )
        report = verify_rulebook(
            g0, queries, batches, seed=seed, conflict_mode="coalesce"
        )
        assert report.num_batches == 3

    def test_isomorphic_duplicates_are_deduped_and_exact(self):
        g0 = erdos_renyi(50, 6.0, num_labels=2, seed=5)
        base = QUERIES["Q1"]
        # relabeled copy (vertex order permuted) plus a verbatim copy
        perm = [2, 0, 4, 1, 3]
        edges = [
            (min(perm[u], perm[v]), max(perm[u], perm[v])) for u, v in base.edges
        ]
        labels = [0] * base.num_vertices
        for u in range(base.num_vertices):
            labels[perm[u]] = base.labels[u]
        twisted = QueryGraph(base.num_vertices, sorted(edges), labels, name="Q1twist")
        clone = QueryGraph(
            base.num_vertices, list(base.edges), list(base.labels), name="Q1clone"
        )
        queries = [base, twisted, clone, QUERIES["Q2"]]
        batches = generate_adversarial_stream(g0, num_batches=3, seed=6)
        report = verify_rulebook(g0, queries, batches, seed=7)
        # lexsorted names: Q1 < Q1clone < Q1twist < Q2 — Q1 is representative
        assert report.aliases == {"Q1clone": "Q1", "Q1twist": "Q1"}
        engine = MultiQueryEngine(g0, queries, seed=7)
        res = engine.process_batch(generate_adversarial_stream(g0, seed=8)[0])
        assert res.delta_counts["Q1clone"] == res.delta_counts["Q1"]
        assert res.delta_counts["Q1twist"] == res.delta_counts["Q1"]

    def test_consistency_error_carries_context(self):
        g0 = erdos_renyi(40, 5.0, num_labels=2, seed=9)
        batches = generate_adversarial_stream(g0, num_batches=1, seed=9)
        report = verify_rulebook(g0, _catalog()[:2], batches, seed=9)
        assert report.total_delta == sum(report.delta_per_batch)
        with pytest.raises(ConsistencyError):
            raise ConsistencyError("synthetic")


# ----------------------------------------------------------------------
# sink order and alias remapping
# ----------------------------------------------------------------------
class TestSinkParity:
    def _emissions(self, g0, queries, batches, *, shared):
        engine = MultiQueryEngine(g0, queries, seed=3, shared=shared)
        out = {q.name: [] for q in queries}
        sinks = {
            name: (lambda emb, sign, name=name: out[name].append((emb, sign)))
            for name in out
        }
        for batch in batches:
            engine.process_batch(batch, sinks=sinks)
        return out

    def test_representative_sinks_bit_identical_order(self):
        g0 = erdos_renyi(50, 6.0, num_labels=3, seed=21)
        queries = _catalog()
        batches = generate_adversarial_stream(g0, num_batches=3, seed=22)
        shared = self._emissions(g0, queries, batches, shared=True)
        indep = self._emissions(g0, queries, batches, shared=False)
        for name in shared:
            assert shared[name] == indep[name], name  # order included

    def test_alias_sinks_multiset_equal_and_remapped(self):
        g0 = erdos_renyi(50, 6.0, num_labels=2, seed=23)
        base = QUERIES["Q1"]
        clone = QueryGraph(
            base.num_vertices, list(base.edges), list(base.labels), name="Q1clone"
        )
        batches = generate_adversarial_stream(g0, num_batches=2, seed=24)
        shared = self._emissions(g0, [base, clone], batches, shared=True)
        indep = self._emissions(g0, [base, clone], batches, shared=False)
        # the clone shares Q1's structure verbatim, so the identity iso makes
        # even the order identical; the general guarantee is multiset equality
        assert sorted(shared["Q1clone"]) == sorted(indep["Q1clone"])
        assert shared["Q1"] == indep["Q1"]


# ----------------------------------------------------------------------
# trie construction and masks
# ----------------------------------------------------------------------
class TestTrieMechanics:
    def test_trie_counts_and_sharing_ratio(self):
        queries = sorted(_catalog(), key=lambda q: q.name)
        trie = ExecutionTrie({q.name: compile_delta_plans(q) for q in queries})
        stats = trie.stats
        assert stats.num_queries == 6
        assert stats.num_plans == sum(q.num_edges for q in queries)
        assert stats.expanded_levels < stats.total_levels  # real sharing
        assert 0.0 < stats.sharing_ratio < 1.0
        assert stats.to_dict()["shared_levels"] == stats.shared_levels

    def test_identical_plans_collapse_to_one_path(self):
        q = QUERIES["Q2"]
        a = QueryGraph(q.num_vertices, list(q.edges), list(q.labels), name="A")
        b = QueryGraph(q.num_vertices, list(q.edges), list(q.labels), name="B")
        trie = ExecutionTrie({"A": compile_delta_plans(a), "B": compile_delta_plans(b)})
        # every level node carries both queries; no extra expansions for B
        solo = ExecutionTrie({"A": compile_delta_plans(a)})
        assert trie.stats.expanded_levels == solo.stats.expanded_levels
        assert trie.stats.total_levels == 2 * solo.stats.total_levels

    def test_plan_signature_separates_distinct_structures(self):
        sigs = {
            plan_signature(p)
            for q in _catalog()
            for p in compile_delta_plans(q)
        }
        assert len(sigs) > 6  # distinct structures stay distinct

    def test_query_set_masks_narrow_and_intern(self):
        masks = QuerySetMasks(["a", "b", "c"])
        full = masks.intern(masks.bits_of(["a", "b", "c"]))
        ids = np.array([full, full, full], dtype=np.int64)
        ab = masks.bits_of(["a", "b"])
        active = masks.row_active(ids, masks.bits_of(["c"]))
        assert active.all()
        narrowed = masks.narrowed(ids, ab)
        assert len(set(narrowed.tolist())) == 1  # interned to one id
        none = masks.row_active(narrowed, masks.bits_of(["c"]))
        assert not none.any()

    def test_masked_level_candidates_matches_compacted_rows(self):
        g = powerlaw_graph(400, 6.0, max_degree=40, num_labels=2, seed=31)
        from repro.core.cache import CachedDeviceView
        from repro.core.dcsr import DcsrCache
        from repro.core.matching import delta_roots
        from repro.graphs.dynamic_graph import DynamicGraph
        from repro.gpu.counters import AccessCounters
        from repro.gpu.device import default_device

        g0, batches = derive_stream(g, num_updates=32, batch_size=32, seed=31)
        graph = DynamicGraph(g0)
        batch = graph.apply_batch(batches[0])
        cache = DcsrCache.build(graph, np.arange(16))
        plan = compile_delta_plans(QUERIES["Q1"])[0]
        roots, _ = delta_roots(plan, batch, graph.labels)
        if roots.shape[0] < 2:
            pytest.skip("stream produced too few roots for this seed")
        active = np.zeros(roots.shape[0], dtype=bool)
        active[::2] = True

        def run(rows, mask):
            counters = AccessCounters()
            view = CachedDeviceView(graph, default_device(), counters, cache)
            kernel = FrontierKernel(view, graph.labels)
            flat, cnt = kernel.level_candidates(plan.levels[0], rows, mask)
            return flat, cnt, counters

        flat_m, cnt_m, ctr_m = run(roots.astype(np.int64), active)
        flat_c, cnt_c, ctr_c = run(roots.astype(np.int64)[active], None)
        assert np.array_equal(flat_m, flat_c)
        assert np.array_equal(cnt_m[active], cnt_c)
        assert not cnt_m[~active].any()
        assert ctr_m.summary() == ctr_c.summary()  # inactive rows charge nothing


# ----------------------------------------------------------------------
# determinism and the shared-never-loses property
# ----------------------------------------------------------------------
class TestDeterminismAndCost:
    def test_lexsorted_order_is_insertion_order_independent(self):
        g0 = erdos_renyi(50, 6.0, num_labels=3, seed=41)
        queries = _catalog()
        batches = generate_adversarial_stream(g0, num_batches=2, seed=42)

        def run(qs):
            engine = MultiQueryEngine(g0, qs, seed=5)
            return [engine.process_batch(b) for b in batches]

        fwd = run(list(queries))
        rev = run(list(reversed(queries)))
        for a, b in zip(fwd, rev):
            assert list(a.delta_counts) == list(b.delta_counts)  # key order too
            assert a.delta_counts == b.delta_counts
            assert a.match_counters.summary() == b.match_counters.summary()

    def test_shared_kernel_never_charges_more_than_independent(self):
        g = powerlaw_graph(1_000, 7.0, max_degree=50, num_labels=2, seed=43)
        g0, batches = derive_stream(g, num_updates=64, batch_size=32, seed=43)
        queries = rulebook_suite(12, num_labels=2, seed=44)

        def total(shared):
            engine = MultiQueryEngine(g0, queries, seed=6, shared=shared)
            ns = 0.0
            for b in batches:
                ns += engine.process_batch(b).breakdown.match_ns
            return ns

        # shared charges are a subset of the independent ones, so simulated
        # kernel time can only go down
        assert total(True) <= total(False)
