"""Property-based tests over every partitioner (``hypothesis``).

Whatever the graph, frequency vector, device count, or root batch, a
partitioner must return a *total, in-range, deterministic* ownership map —
the multi-GPU engine's disjoint root cover (and hence ΔM correctness)
rests on exactly these three properties.  The balance-capped strategies
additionally must never overshoot their degree-mass cap by more than one
vertex (cap checked before each placement, not after).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.generators import erdos_renyi, powerlaw_graph
from repro.multigpu import PARTITIONER_NAMES, adjacency_csr, make_partitioner

SETTINGS = settings(max_examples=25, deadline=None)


def _graph(kind: str, n: int, seed: int) -> DynamicGraph:
    avg = min(4.0, (n - 1) / 2) if n > 1 else 0.0
    if kind == "er":
        return DynamicGraph(erdos_renyi(n, avg, num_labels=2, seed=seed))
    return DynamicGraph(powerlaw_graph(n, avg, max_degree=30, num_labels=2, seed=seed))


graph_params = st.tuples(
    st.sampled_from(["er", "pl"]),
    st.integers(min_value=2, max_value=120),
    st.integers(min_value=0, max_value=2**16),
)


@st.composite
def partitioner_case(draw):
    name = draw(st.sampled_from(sorted(PARTITIONER_NAMES)))
    kind, n, seed = draw(graph_params)
    k = draw(st.integers(min_value=1, max_value=6))
    freq_mode = draw(st.sampled_from(["none", "zeros", "degrees", "random"]))
    with_roots = draw(st.booleans())
    return name, kind, n, seed, k, freq_mode, with_roots


def _frequencies(mode: str, g: DynamicGraph, seed: int):
    if mode == "none":
        return None
    if mode == "zeros":
        return np.zeros(g.num_vertices)
    if mode == "degrees":
        return g.degrees_new().astype(float)
    rng = np.random.default_rng(seed)
    f = rng.random(g.num_vertices)
    f[rng.random(g.num_vertices) < 0.5] = 0.0
    return f


@given(case=partitioner_case())
@SETTINGS
def test_total_in_range_deterministic(case):
    name, kind, n, seed, k, freq_mode, with_roots = case
    g = _graph(kind, n, seed)
    freqs = _frequencies(freq_mode, g, seed)
    roots = None
    if with_roots and g.num_vertices:
        rng = np.random.default_rng(seed + 1)
        roots = rng.integers(0, g.num_vertices, size=(16, 2)).astype(np.int64)
    a = make_partitioner(name).assign(g, freqs, k, roots=roots)
    b = make_partitioner(name).assign(g, freqs, k, roots=roots)

    assert a.shape == (g.num_vertices,)          # total: every vertex owned
    assert a.dtype == np.int64
    if g.num_vertices:
        assert a.min() >= 0 and a.max() < k      # in range
    assert np.array_equal(a, b)                  # deterministic


@given(
    name=st.sampled_from(["freq", "mincut"]),
    params=graph_params,
    k=st.integers(min_value=2, max_value=6),
)
@SETTINGS
def test_balance_cap_never_overshoots_by_one_placement_unit(name, params, k):
    """The cap is checked before each placement, so a shard can exceed it
    by at most one placement unit: a single vertex for ``mincut``'s
    streaming, a hot vertex plus its unclaimed neighbors (one closed
    neighborhood) for ``freq``'s group pulls."""
    kind, n, seed = params
    g = _graph(kind, n, seed)
    freqs = g.degrees_new().astype(float)  # everything hot: worst case for caps
    part = make_partitioner(name, {"balance_slack": 0.15})
    owner = part.assign(g, freqs, k)
    degrees = g.degrees_new().astype(np.int64)
    if degrees.sum() == 0:
        return
    load = np.bincount(owner, weights=degrees, minlength=k)
    cap = 1.15 * degrees.sum() / k
    if name == "mincut":
        unit = degrees.max()
    else:
        rowptr, cols, _ = adjacency_csr(g)
        rows = np.repeat(np.arange(g.num_vertices), np.diff(rowptr))
        nbr_mass = np.bincount(rows, weights=degrees[cols],
                               minlength=g.num_vertices)
        unit = (degrees + nbr_mass).max()
    assert load.max() <= cap + unit
