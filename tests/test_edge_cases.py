"""Edge cases and failure injection across the stack.

Deliberately hostile configurations: degenerate devices, starved budgets,
isolated vertices, patterns larger than the data graph, batches introducing
brand-new vertices mid-stream, and label alphabets with no matches.
"""

import numpy as np
import pytest

from repro.core.engine import GCSMEngine
from repro.core.baselines import make_system
from repro.core.reference import count_embeddings
from repro.graphs import DynamicGraph, StaticGraph, UpdateBatch
from repro.graphs.generators import erdos_renyi
from repro.graphs.stream import derive_stream
from repro.gpu import DeviceConfig
from repro.query import QueryGraph

TRIANGLE = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")


class TestDegenerateDevices:
    def test_tiny_device_still_correct(self):
        """A device with almost no memory degrades to pure zero-copy but
        never changes results."""
        g = erdos_renyi(40, 5.0, num_labels=1, seed=1)
        g0, batches = derive_stream(g, update_fraction=0.3, batch_size=12, seed=1)
        tiny = DeviceConfig(global_memory_bytes=64, kernel_reserve_bytes=32,
                            cache_buffer_bytes=32)
        normal_engine = GCSMEngine(g0, TRIANGLE, seed=2)
        tiny_engine = GCSMEngine(g0, TRIANGLE, device=tiny, seed=2)
        for batch in batches[:2]:
            a = normal_engine.process_batch(batch)
            b = tiny_engine.process_batch(batch)
            assert a.delta_count == b.delta_count
        assert tiny_engine.cache_budget_bytes == 32

    def test_slow_interconnect_slows_zero_copy_systems_only(self):
        g = erdos_renyi(200, 6.0, num_labels=1, seed=2)
        g0, batches = derive_stream(g, num_updates=32, batch_size=32, seed=2)
        fast = DeviceConfig(pcie_bandwidth_bpns=64.0)
        slow = DeviceConfig(pcie_bandwidth_bpns=1.0)
        zc_fast = make_system("ZC", g0, TRIANGLE, device=fast).process_batch(batches[0])
        zc_slow = make_system("ZC", g0, TRIANGLE, device=slow).process_batch(batches[0])
        assert zc_slow.breakdown.total_ns > zc_fast.breakdown.total_ns
        cpu_fast = make_system("CPU", g0, TRIANGLE, device=fast).process_batch(batches[0])
        cpu_slow = make_system("CPU", g0, TRIANGLE, device=slow).process_batch(batches[0])
        assert cpu_slow.breakdown.total_ns == cpu_fast.breakdown.total_ns


class TestHostileWorkloads:
    def test_query_larger_than_graph(self):
        g = StaticGraph.from_edges(3, [(0, 1), (1, 2)])
        big = QueryGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        engine = GCSMEngine(g, big, seed=1)
        engine.graph.apply_batch(UpdateBatch([(0, 2)], [1]))
        engine.graph.reorganize()
        # fresh engine over the settled snapshot
        engine = GCSMEngine(engine.snapshot(), big, seed=1)
        result = engine.process_batch(UpdateBatch([(0, 2)], [-1]))
        assert result.delta_count == 0

    def test_no_matching_labels_anywhere(self):
        g = erdos_renyi(30, 4.0, num_labels=2, seed=3)
        impossible = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], [9, 9, 9])
        g0, batches = derive_stream(g, update_fraction=0.3, batch_size=8, seed=3)
        engine = GCSMEngine(g0, impossible, seed=4)
        for batch in batches[:2]:
            result = engine.process_batch(batch)
            assert result.delta_count == 0
            assert result.match_stats.roots_processed == 0
            # nothing sampled, nothing cached
            assert result.cached_vertices.size == 0

    def test_batch_introducing_new_vertices(self):
        g = erdos_renyi(20, 3.0, num_labels=1, seed=5)
        engine = GCSMEngine(g, TRIANGLE, seed=6)
        before = count_embeddings(engine.snapshot(), TRIANGLE)
        # connect three brand-new vertices into a triangle with an old one
        batch = UpdateBatch(
            [(20, 21), (21, 22), (20, 22), (0, 20)],
            [1, 1, 1, 1],
            new_vertex_labels={20: 0, 21: 0, 22: 0},
        )
        result = engine.process_batch(batch)
        after = count_embeddings(engine.snapshot(), TRIANGLE)
        assert engine.graph.num_vertices == 23
        assert result.delta_count == after - before
        assert after - before >= 6  # at least the new triangle's 6 embeddings

    def test_graph_with_isolated_vertices(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        g = StaticGraph.from_edges(10, edges)  # vertices 3..9 isolated
        engine = GCSMEngine(g, TRIANGLE, seed=7)
        result = engine.process_batch(UpdateBatch([(3, 4)], [1]))
        assert result.delta_count == 0

    def test_deleting_every_edge(self):
        g = StaticGraph.from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        engine = GCSMEngine(g, TRIANGLE, seed=8)
        batch = UpdateBatch([(0, 1), (1, 2), (0, 2), (2, 3)], [-1, -1, -1, -1])
        result = engine.process_batch(batch)
        assert result.delta_count == -6  # the single triangle, all 6 embeddings
        assert engine.snapshot().num_edges == 0

    def test_alternating_insert_delete_of_same_edge(self):
        g = StaticGraph.from_edges(3, [(0, 1), (1, 2)])
        engine = GCSMEngine(g, TRIANGLE, seed=9)
        total = 0
        for sign in (1, -1, 1, -1, 1):
            result = engine.process_batch(UpdateBatch([(0, 2)], [sign]))
            total += result.delta_count
        # net effect: edge present -> one triangle = 6 embeddings
        assert total == 6
        assert count_embeddings(engine.snapshot(), TRIANGLE) == 6


class TestEstimatorEdgeCases:
    def test_zero_walk_floor(self):
        g = erdos_renyi(30, 4.0, num_labels=1, seed=10)
        g0, batches = derive_stream(g, update_fraction=0.3, batch_size=8, seed=10)
        engine = GCSMEngine(g0, TRIANGLE, num_walks=1, seed=11)
        result = engine.process_batch(batches[0])  # must not crash
        assert result.estimation.num_walks == 1

    def test_dense_tiny_graph(self):
        # complete graph: every walk survives everywhere
        n = 8
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        g = StaticGraph.from_edges(n, edges)
        g0, batches = derive_stream(g, update_fraction=0.2, batch_size=4, seed=12)
        engine = GCSMEngine(g0, TRIANGLE, seed=13)
        prev = count_embeddings(g0, TRIANGLE)
        for batch in batches:
            r = engine.process_batch(batch)
            now = count_embeddings(engine.snapshot(), TRIANGLE)
            assert r.delta_count == now - prev
            prev = now
