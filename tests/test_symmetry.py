"""Tests for automorphism enumeration and canonical-embedding filtering."""

from itertools import permutations

from repro.query import QUERIES, QueryGraph, automorphism_count, automorphisms
from repro.query.symmetry import is_canonical_embedding


def test_triangle_unlabeled_has_six_automorphisms():
    q = QueryGraph(3, [(0, 1), (1, 2), (0, 2)])
    assert automorphism_count(q) == 6


def test_triangle_distinct_labels_is_rigid():
    q = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], [0, 1, 2])
    assert automorphism_count(q) == 1


def test_path_symmetry():
    q = QueryGraph(3, [(0, 1), (1, 2)])
    assert automorphism_count(q) == 2  # flip the endpoints


def test_labels_break_path_symmetry():
    q = QueryGraph(3, [(0, 1), (1, 2)], [0, 1, 2])
    assert automorphism_count(q) == 1


def test_identity_always_present():
    for q in QUERIES.values():
        assert tuple(range(q.num_vertices)) in automorphisms(q)


def test_automorphisms_form_group():
    q = QueryGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])  # 4-cycle: dihedral, order 8
    autos = set(automorphisms(q))
    assert len(autos) == 8
    for a in autos:
        for b in autos:
            composed = tuple(a[b[i]] for i in range(4))
            assert composed in autos


def test_canonical_embedding_selects_one_per_orbit():
    q = QueryGraph(3, [(0, 1), (1, 2), (0, 2)])  # unlabeled triangle
    data_vertices = (7, 3, 9)
    canon = [
        perm
        for perm in permutations(data_vertices)
        if is_canonical_embedding(q, perm)
    ]
    assert len(canon) == 1
    assert canon[0] == (3, 7, 9)


def test_canonical_embedding_rigid_pattern_keeps_all():
    q = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], [0, 1, 2])
    assert is_canonical_embedding(q, (9, 3, 7))
    assert is_canonical_embedding(q, (3, 9, 7))


def test_catalog_automorphism_counts():
    # labeled catalog queries are mostly rigid; Q4's alternating labels keep
    # a 4-element symmetry group
    counts = {name: automorphism_count(q) for name, q in QUERIES.items()}
    assert counts["Q1"] == 1
    assert counts["Q4"] == 4
    assert all(c >= 1 for c in counts.values())


# ----------------------------------------------------------------------
# cross-pattern canonical forms (rulebook dedupe)
# ----------------------------------------------------------------------
def test_canonical_form_equal_iff_isomorphic():
    from repro.query.symmetry import canonical_form

    base = QueryGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)], [0, 1, 0, 1], name="sq")
    # same square, vertices renumbered
    twisted = QueryGraph(4, [(0, 2), (1, 2), (0, 3), (1, 3)], [0, 0, 1, 1], name="tw")
    other_labels = QueryGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)], [0, 1, 1, 0])
    assert canonical_form(base) == canonical_form(twisted)
    assert canonical_form(base) != canonical_form(other_labels)
    assert canonical_form(base) != canonical_form(QUERIES["Q1"])


def test_find_isomorphism_maps_edges_and_labels():
    from repro.query.symmetry import find_isomorphism

    base = QUERIES["Q2"]
    perm = (3, 1, 4, 0, 2)
    edges = sorted(
        (min(perm[u], perm[v]), max(perm[u], perm[v])) for u, v in base.edges
    )
    labels = [0] * base.num_vertices
    for u in range(base.num_vertices):
        labels[perm[u]] = base.labels[u]
    alias = QueryGraph(base.num_vertices, edges, labels, name="Q2alias")
    iso = find_isomorphism(base, alias)
    assert iso is not None
    for u, v in base.edges:
        assert alias.has_edge(iso[u], iso[v])
        assert alias.label(iso[u]) == base.label(u)
    # non-isomorphic pair
    assert find_isomorphism(base, QUERIES["Q1"]) is None


def test_find_isomorphism_is_deterministic_smallest():
    from repro.query.symmetry import find_isomorphism

    tri = QueryGraph(3, [(0, 1), (1, 2), (0, 2)])  # unlabeled, 6 isomorphisms
    assert find_isomorphism(tri, tri) == (0, 1, 2)
