"""Tests for automorphism enumeration and canonical-embedding filtering."""

from itertools import permutations

from repro.query import QUERIES, QueryGraph, automorphism_count, automorphisms
from repro.query.symmetry import is_canonical_embedding


def test_triangle_unlabeled_has_six_automorphisms():
    q = QueryGraph(3, [(0, 1), (1, 2), (0, 2)])
    assert automorphism_count(q) == 6


def test_triangle_distinct_labels_is_rigid():
    q = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], [0, 1, 2])
    assert automorphism_count(q) == 1


def test_path_symmetry():
    q = QueryGraph(3, [(0, 1), (1, 2)])
    assert automorphism_count(q) == 2  # flip the endpoints


def test_labels_break_path_symmetry():
    q = QueryGraph(3, [(0, 1), (1, 2)], [0, 1, 2])
    assert automorphism_count(q) == 1


def test_identity_always_present():
    for q in QUERIES.values():
        assert tuple(range(q.num_vertices)) in automorphisms(q)


def test_automorphisms_form_group():
    q = QueryGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])  # 4-cycle: dihedral, order 8
    autos = set(automorphisms(q))
    assert len(autos) == 8
    for a in autos:
        for b in autos:
            composed = tuple(a[b[i]] for i in range(4))
            assert composed in autos


def test_canonical_embedding_selects_one_per_orbit():
    q = QueryGraph(3, [(0, 1), (1, 2), (0, 2)])  # unlabeled triangle
    data_vertices = (7, 3, 9)
    canon = [
        perm
        for perm in permutations(data_vertices)
        if is_canonical_embedding(q, perm)
    ]
    assert len(canon) == 1
    assert canon[0] == (3, 7, 9)


def test_canonical_embedding_rigid_pattern_keeps_all():
    q = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], [0, 1, 2])
    assert is_canonical_embedding(q, (9, 3, 7))
    assert is_canonical_embedding(q, (3, 9, 7))


def test_catalog_automorphism_counts():
    # labeled catalog queries are mostly rigid; Q4's alternating labels keep
    # a 4-element symmetry group
    counts = {name: automorphism_count(q) for name, q in QUERIES.items()}
    assert counts["Q1"] == 1
    assert counts["Q4"] == 4
    assert all(c >= 1 for c in counts.values())
