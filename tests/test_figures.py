"""Integration tests for the figure runners (tiny configurations).

The benchmarks run the paper-scale configurations; these tests exercise the
same code paths fast, verifying structure and basic sanity of every runner.
"""

import pytest

from repro.bench import figures
from repro.bench.harness import clear_caches


@pytest.fixture(autouse=True)
def _fresh():
    clear_caches()
    figures._RUN_CACHE.clear()
    yield
    clear_caches()
    figures._RUN_CACHE.clear()


class TestCheapRunners:
    def test_table1(self):
        rows = figures.table1_datasets()
        assert len(rows) == 7

    def test_fig7(self):
        rows = figures.fig7_queries()
        assert [r["query"] for r in rows] == ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]
        assert all(5 <= r["vertices"] <= 7 for r in rows)

    def test_table3_small(self):
        out = figures.table3_reorg_time(graphs=("AZ", "PA"), batch_sizes=(32, 64))
        assert set(out) == {("AZ", 32), ("AZ", 64), ("PA", 32), ("PA", 64)}
        assert all(v > 0 for v in out.values())


class TestExecTimeRunner:
    def test_small_config(self):
        out = figures.fig8_to_10_exec_time(
            "AZ", batch_size=32, queries=("Q1",), systems=("GCSM", "ZC"),
        )
        assert set(out) == {"Q1"}
        assert set(out["Q1"]) == {"GCSM", "ZC"}
        assert out["Q1"]["GCSM"].delta_total == out["Q1"]["ZC"].delta_total

    def test_run_cache_reused(self):
        figures.fig8_to_10_exec_time("AZ", batch_size=32, queries=("Q1",),
                                     systems=("ZC",))
        size_before = len(figures._RUN_CACHE)
        figures.fig8_to_10_exec_time("AZ", batch_size=32, queries=("Q1",),
                                     systems=("ZC",))
        assert len(figures._RUN_CACHE) == size_before


class TestOtherRunners:
    def test_fig11_tiny(self):
        out = figures.fig11_roadnet_motifs(
            graphs=("PA",), sizes=(3,), systems=("GCSM", "ZC"), batch_size=32,
        )
        assert set(out) == {("PA", 3)}
        assert out[("PA", 3)]["GCSM"] > 0

    def test_fig12_tiny(self):
        out = figures.fig12_batch_size_sweep(
            cases=(("AZ", "Q1"),), batch_sizes=(16, 32), total_updates=64,
        )
        assert set(out) == {("AZ", "Q1", 16), ("AZ", "Q1", 32)}
        # same update set: total ΔM over the stream is identical
        d16 = out[("AZ", "Q1", 16)]["GCSM"].delta_total
        d32 = out[("AZ", "Q1", 32)]["GCSM"].delta_total
        assert d16 == d32

    def test_fig13_tiny(self):
        out = figures.fig13_vsgm_breakdown(cases=(("AZ", "Q1", 4),))
        assert "AZ" in out
        assert out["AZ"]["VSGM"]["dc_ms"] >= 0

    def test_fig14_tiny(self):
        out = figures.fig14_rapidflow(graphs=("AZ",), queries=("Q1",), batch_size=32)
        assert set(out["AZ"]) == {"Q1"}
        assert out["FR_oom"] is True

    def test_fig15_tiny(self):
        out = figures.fig15_locality(graphs=("AZ",), queries=("Q1",),
                                     batch_size=32, fractions=(0.05, 0.2))
        stats = out["AZ"]
        assert len(stats["access_share"]) == 2
        assert 0 <= stats["access_share"][0] <= stats["access_share"][1] <= 1

    def test_table2_tiny(self):
        out = figures.table2_overhead(graphs=("AZ",), queries=("Q1",))
        fe, dc = out[("AZ", "Q1")]
        assert 0 <= fe <= 100 and 0 <= dc <= 100

    def test_um_tiny(self):
        out = figures.um_slowdown(cases=(("AZ", "Q1"),), batch_size=32)
        assert out["AZ"] > 1.0
