"""Tests for the multi-query engine (shared per-batch pipeline)."""

import numpy as np
import pytest

from repro.core.engine import GCSMEngine
from repro.core.multiquery import MultiQueryEngine
from repro.core.reference import count_embeddings
from repro.graphs.generators import erdos_renyi, powerlaw_graph
from repro.graphs.stream import derive_stream
from repro.query import QueryGraph

TRIANGLE = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")
WEDGE = QueryGraph(3, [(0, 1), (1, 2)], [0, 1, 0], name="wedge")
SQUARE = QueryGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)], name="square")


def small_case(seed=1):
    g = erdos_renyi(50, 5.0, num_labels=2, seed=seed)
    return derive_stream(g, update_fraction=0.4, batch_size=16, seed=seed)


class TestCorrectness:
    def test_per_query_deltas_match_oracle(self):
        g0, batches = small_case()
        engine = MultiQueryEngine(g0, [TRIANGLE, WEDGE, SQUARE], seed=2)
        prev = {q.name: count_embeddings(g0, q) for q in engine.queries}
        for batch in batches[:3]:
            result = engine.process_batch(batch)
            snap = engine.snapshot()
            for q in engine.queries:
                now = count_embeddings(snap, q)
                assert result.delta_counts[q.name] == now - prev[q.name], q.name
                prev[q.name] = now

    def test_matches_individual_engines(self):
        g0, batches = small_case(seed=3)
        multi = MultiQueryEngine(g0, [TRIANGLE, SQUARE], seed=4)
        singles = {q.name: GCSMEngine(g0, q, seed=4) for q in (TRIANGLE, SQUARE)}
        for batch in batches[:3]:
            mr = multi.process_batch(batch)
            for name, engine in singles.items():
                sr = engine.process_batch(batch)
                assert mr.delta_counts[name] == sr.delta_count

    def test_requires_unique_names(self):
        g0, _ = small_case()
        with pytest.raises(ValueError):
            MultiQueryEngine(g0, [TRIANGLE, TRIANGLE])

    def test_requires_queries(self):
        g0, _ = small_case()
        with pytest.raises(ValueError):
            MultiQueryEngine(g0, [])


class TestAmortization:
    def test_shared_phases_paid_once(self):
        """Per batch, the multi-query engine pays update/FE/pack/reorg once
        while N separate engines pay them N times."""
        g = powerlaw_graph(2_000, 8.0, max_degree=80, num_labels=2, seed=5)
        g0, batches = derive_stream(g, num_updates=64, batch_size=64, seed=5)
        queries = [TRIANGLE, WEDGE, SQUARE]
        multi = MultiQueryEngine(g0, queries, seed=6)
        mr = multi.process_batch(batches[0])
        shared_overhead = (
            mr.breakdown.update_ns + mr.breakdown.pack_ns + mr.breakdown.reorg_ns
        )

        separate_overhead = 0.0
        for q in queries:
            engine = GCSMEngine(g0, q, seed=6)
            sr = engine.process_batch(batches[0])
            separate_overhead += (
                sr.breakdown.update_ns + sr.breakdown.pack_ns + sr.breakdown.reorg_ns
            )
        # one shared pipeline's fixed costs land well below three engines'
        assert shared_overhead < 0.7 * separate_overhead

    def test_result_structure(self):
        g0, batches = small_case(seed=7)
        engine = MultiQueryEngine(g0, [TRIANGLE, WEDGE], seed=8)
        r = engine.process_batch(batches[0])
        assert set(r.delta_counts) == {"triangle", "wedge"}
        assert set(r.match_stats) == {"triangle", "wedge"}
        assert r.total_delta == sum(r.delta_counts.values())
        assert r.estimation is not None
        assert r.breakdown.total_ns > 0
        assert r.cache_hits + r.cache_misses > 0

    def test_pooled_estimation_covers_all_queries(self):
        """The pooled frequency estimate must reflect accesses of every
        query, not just the first one."""
        g = powerlaw_graph(2_000, 8.0, max_degree=80, num_labels=2, seed=9)
        g0, batches = derive_stream(g, num_updates=64, batch_size=64, seed=9)
        multi = MultiQueryEngine(g0, [TRIANGLE, SQUARE], num_walks=4096, seed=10)
        r = multi.process_batch(batches[0])
        pooled_sampled = set(r.estimation.sampled_vertices.tolist())

        solo = GCSMEngine(g0, SQUARE, num_walks=2048, seed=10)
        sr = solo.process_batch(batches[0])
        square_sampled = set(sr.estimation.sampled_vertices.tolist())
        # substantial overlap with the second query's own sampled set
        if square_sampled:
            overlap = len(pooled_sampled & square_sampled) / len(square_sampled)
            assert overlap > 0.3
