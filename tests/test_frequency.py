"""Tests for random-walk frequency estimation (paper Sec. IV).

The key statistical test: the estimator is *unbiased* — averaging estimates
over many independent runs converges to the exact access counts measured by
instrumenting the exact matching kernel (paper Eq. 6).
"""

import math

import numpy as np
import pytest

from repro.core.frequency import (
    EstimationResult,
    FrequencyEstimator,
    default_num_walks,
    required_walks,
)
from repro.core.matching import match_batch
from repro.graphs import DynamicGraph
from repro.graphs.generators import erdos_renyi, powerlaw_graph
from repro.graphs.stream import derive_stream
from repro.gpu import AccessCounters, HostCPUView, default_device
from repro.gpu.counters import Channel
from repro.query import QueryGraph, compile_delta_plans

TRIANGLE = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")


def setup_case(seed=0, n=40, batch=12):
    g = erdos_renyi(n, 5.0, num_labels=1, seed=seed)
    g0, batches = derive_stream(g, update_fraction=0.4, batch_size=batch, seed=seed)
    dg = DynamicGraph(g0)
    dg.apply_batch(batches[0])
    return dg, batches[0]


class TestRequiredWalks:
    def test_formula_shape(self):
        # Eq. (5): more walks for deeper patterns, bigger batches, larger D,
        # smaller frequency, tighter confidence, smaller alpha
        base = required_walks(4, 100, 10, 50.0)
        assert required_walks(5, 100, 10, 50.0) > base
        assert required_walks(4, 200, 10, 50.0) > base
        assert required_walks(4, 100, 20, 50.0) > base
        assert required_walks(4, 100, 10, 25.0) > base
        assert required_walks(4, 100, 10, 50.0, confidence=0.99) > base
        assert required_walks(4, 100, 10, 50.0, alpha=0.5) > base

    def test_exact_value(self):
        # (n-1)(2+a)|dE|D^{n-2} / (a^2 (1-delta) C_y)
        val = required_walks(3, 10, 4, 5.0, alpha=1.0, confidence=0.5)
        assert val == pytest.approx(2 * 3 * 10 * 4 / (1 * 0.5 * 5.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            required_walks(1, 10, 4, 5.0)
        with pytest.raises(ValueError):
            required_walks(3, 10, 4, 0.0)
        with pytest.raises(ValueError):
            required_walks(3, 10, 4, 5.0, alpha=-1)
        with pytest.raises(ValueError):
            required_walks(3, 10, 4, 5.0, confidence=1.5)


class TestDefaultNumWalks:
    def test_scales_with_batch_and_depth(self):
        assert default_num_walks(1000, 100, 5) > default_num_walks(100, 100, 5)
        assert default_num_walks(1000, 100, 7) > default_num_walks(1000, 100, 5)
        assert default_num_walks(1, 2, 3) >= 256  # floor


class TestEstimator:
    def test_deterministic_given_seed(self):
        dg, batch = setup_case()
        plans = compile_delta_plans(TRIANGLE)
        r1 = FrequencyEstimator(dg, default_device(), seed=5).estimate(plans, batch)
        r2 = FrequencyEstimator(dg, default_device(), seed=5).estimate(plans, batch)
        assert np.array_equal(r1.frequencies, r2.frequencies)

    def test_counters_record_cpu_cost(self):
        dg, batch = setup_case()
        plans = compile_delta_plans(TRIANGLE)
        res = FrequencyEstimator(dg, default_device(), seed=1).estimate(plans, batch)
        assert res.counters.compute_ops > 0
        assert res.nodes_visited > 0

    def test_sampled_vertices_and_top(self):
        dg, batch = setup_case()
        plans = compile_delta_plans(TRIANGLE)
        res = FrequencyEstimator(dg, default_device(), seed=2).estimate(
            plans, batch, num_walks=4096
        )
        sampled = res.sampled_vertices
        assert sampled.size > 0
        top = res.top_vertices(5)
        assert top.size <= 5
        # top vertices sorted by decreasing estimate
        vals = res.frequencies[top]
        assert bool(np.all(vals[:-1] >= vals[1:]))
        assert res.top_vertices(0).size == 0
        assert res.top_vertices(10**6).size == sampled.size

    def test_unbiasedness_against_exact_counts(self):
        """Mean of many estimates ~= exact access counts (Theorem 1 / Eq. 6)."""
        dg, batch = setup_case(seed=3, n=30, batch=8)
        plans = compile_delta_plans(TRIANGLE)
        # exact access counts from instrumenting the exact kernel
        counters = AccessCounters()
        match_batch(plans, batch, HostCPUView(dg, default_device(), counters))
        exact = counters.vertex_access_counts(dg.num_vertices).astype(float)

        acc = np.zeros(dg.num_vertices)
        runs = 60
        est = FrequencyEstimator(dg, default_device(), seed=10)
        for _ in range(runs):
            acc += est.estimate(plans, batch, num_walks=600).frequencies
        mean = acc / runs
        heavy = exact >= np.percentile(exact[exact > 0], 70)
        rel = np.abs(mean[heavy] - exact[heavy]) / exact[heavy]
        # unbiased estimator: mean relative error on frequent vertices small
        assert float(np.median(rel)) < 0.35

    def test_survival_schedule_also_unbiased(self):
        dg, batch = setup_case(seed=4, n=30, batch=8)
        plans = compile_delta_plans(TRIANGLE)
        counters = AccessCounters()
        match_batch(plans, batch, HostCPUView(dg, default_device(), counters))
        exact = counters.vertex_access_counts(dg.num_vertices).astype(float)
        est = FrequencyEstimator(dg, default_device(), seed=11, survival=1.0)
        acc = np.zeros(dg.num_vertices)
        runs = 40
        for _ in range(runs):
            acc += est.estimate(plans, batch, num_walks=400).frequencies
        mean = acc / runs
        heavy = exact >= np.percentile(exact[exact > 0], 70)
        rel = np.abs(mean[heavy] - exact[heavy]) / exact[heavy]
        assert float(np.median(rel)) < 0.35

    def test_more_walks_improve_ranking(self):
        """Spearman-style check: ranking correlation with exact counts
        improves (or stays) as M grows."""
        g = powerlaw_graph(2000, 8.0, max_degree=100, num_labels=1, seed=5)
        g0, batches = derive_stream(g, num_updates=64, batch_size=64, seed=5)
        dg = DynamicGraph(g0)
        dg.apply_batch(batches[0])
        plans = compile_delta_plans(TRIANGLE)
        counters = AccessCounters()
        match_batch(plans, batches[0], HostCPUView(dg, default_device(), counters))
        exact = counters.vertex_access_counts(dg.num_vertices).astype(float)
        top_exact = set(np.argsort(-exact)[:30].tolist())

        def overlap(num_walks):
            est = FrequencyEstimator(dg, default_device(), seed=6, survival=1.0)
            res = est.estimate(plans, batches[0], num_walks=num_walks)
            return len(set(res.top_vertices(30).tolist()) & top_exact)

        small, large = overlap(64), overlap(8192)
        assert large >= small
        assert large >= 15  # large-M ranking finds at least half the true top

    def test_adaptive_estimation_runs(self):
        dg, batch = setup_case(seed=6)
        plans = compile_delta_plans(TRIANGLE)
        est = FrequencyEstimator(dg, default_device(), seed=7)
        res = est.estimate_adaptive(plans, batch, initial_walks=128, max_walks=2048)
        assert res.num_walks >= 128
        assert res.frequencies.shape[0] == dg.num_vertices

    def test_empty_root_plans_handled(self):
        # labels that match nothing -> no roots -> zero estimates
        g = erdos_renyi(20, 3.0, num_labels=2, seed=8)
        g0, batches = derive_stream(g, update_fraction=0.3, batch_size=6, seed=8)
        dg = DynamicGraph(g0)
        dg.apply_batch(batches[0])
        impossible = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], [7, 7, 7])
        plans = compile_delta_plans(impossible)
        res = FrequencyEstimator(dg, default_device(), seed=9).estimate(plans, batches[0])
        assert res.sampled_vertices.size == 0


class TestTheorem1:
    """Empirical check of the paper's Theorem 1: the probability that the
    estimator misranks a clearly-more-frequent vertex below a less-frequent
    one decreases with the number of walks M, and at large M is small."""

    def _misrank_rate(self, num_walks, runs=40):
        dg, batch = setup_case(seed=42, n=36, batch=10)
        plans = compile_delta_plans(TRIANGLE)
        counters = AccessCounters()
        match_batch(plans, batch, HostCPUView(dg, default_device(), counters))
        exact = counters.vertex_access_counts(dg.num_vertices).astype(float)
        accessed = np.nonzero(exact > 0)[0]
        if accessed.size < 4:
            pytest.skip("degenerate case")
        order = accessed[np.argsort(-exact[accessed])]
        x = order[0]                      # clearly frequent vertex
        y = order[min(len(order) - 1, len(order) // 2)]  # mid-tail vertex
        if exact[x] < 2 * exact[y]:
            pytest.skip("not enough frequency separation")
        est = FrequencyEstimator(dg, default_device(), seed=7, survival=1.0)
        misranks = 0
        for _ in range(runs):
            freq = est.estimate(plans, batch, num_walks=num_walks).frequencies
            if freq[x] < freq[y]:
                misranks += 1
        return misranks / runs

    def test_misranking_decreases_with_walks(self):
        small = self._misrank_rate(num_walks=24)
        large = self._misrank_rate(num_walks=1024)
        assert large <= small
        assert large < 0.1  # large M ranks the frequent vertex correctly


class TestTopVerticesTieBreak:
    """Regression: the docstring promises ties broken by ascending vertex id,
    including ties that straddle the k boundary (argpartition used to leave
    the boundary order arbitrary)."""

    def _result(self, freq):
        return EstimationResult(
            np.asarray(freq, dtype=np.float64), 1, 0, AccessCounters()
        )

    def test_tie_at_boundary_picks_smallest_ids(self):
        # four vertices tied at 5.0; top-2 must be the two smallest ids
        res = self._result([0.0, 5.0, 5.0, 5.0, 3.0, 5.0])
        assert res.top_vertices(2).tolist() == [1, 2]
        assert res.top_vertices(4).tolist() == [1, 2, 3, 5]

    def test_descending_frequency_then_id(self):
        res = self._result([2.0, 7.0, 2.0, 9.0, 7.0])
        assert res.top_vertices(5).tolist() == [3, 1, 4, 0, 2]

    def test_zero_entries_never_returned(self):
        res = self._result([0.0, 0.0, 1.0])
        assert res.top_vertices(3).tolist() == [2]

    def test_many_ties_match_full_lexsort(self):
        rng = np.random.default_rng(17)
        freq = rng.integers(0, 4, size=500).astype(np.float64)
        res = self._result(freq)
        nonzero = np.nonzero(freq > 0)[0]
        full = nonzero[np.lexsort((nonzero, -freq[nonzero]))]
        for k in (1, 7, 100, nonzero.size):
            assert res.top_vertices(k).tolist() == full[:k].tolist()


class TestAdaptiveCornerCases:
    def test_max_rounds_one_is_single_pass(self):
        """max_rounds=1 must be exactly one plain estimate() pass."""
        dg, batch = setup_case(seed=21)
        plans = compile_delta_plans(TRIANGLE)
        adaptive = FrequencyEstimator(dg, default_device(), seed=3).estimate_adaptive(
            plans, batch, initial_walks=128, max_rounds=1
        )
        single = FrequencyEstimator(dg, default_device(), seed=3).estimate(
            plans, batch, num_walks=128
        )
        assert adaptive.num_walks == 128
        assert np.array_equal(adaptive.frequencies, single.frequencies)
        assert adaptive.nodes_visited == single.nodes_visited
        assert adaptive.counters.compute_ops == single.counters.compute_ops

    def test_required_walks_overflow_to_inf_clamps(self):
        """Eq. (5) can overflow to float inf; the adaptive loop must clamp
        to max_walks and keep going instead of crashing."""
        assert math.isinf(required_walks(3, 10**6, 10**6, 1e-300))
        dg, batch = setup_case(seed=22)
        plans = compile_delta_plans(TRIANGLE)
        est = FrequencyEstimator(dg, default_device(), seed=4)
        # tiny alpha makes `needed` astronomically large (inf after overflow),
        # so every round runs at the max_walks clamp
        res = est.estimate_adaptive(
            plans, batch, initial_walks=64, alpha=1e-160,
            max_walks=512, max_rounds=3,
        )
        assert res.num_walks <= 64 + 2 * 512
        assert res.num_walks > 64  # the clamp actually triggered extra rounds
        assert np.all(np.isfinite(res.frequencies))

    def test_merged_counters_equal_sum_of_passes(self):
        """estimate_adaptive's merged counters == pass-1 + pass-2 counters."""
        dg, batch = setup_case(seed=23)
        plans = compile_delta_plans(TRIANGLE)
        est = FrequencyEstimator(dg, default_device(), seed=5)
        adaptive = est.estimate_adaptive(
            plans, batch, initial_walks=32, alpha=1e-160,
            max_walks=256, max_rounds=2,
        )
        assert adaptive.num_walks == 32 + 256  # two passes happened

        # replay both passes with an identically-seeded estimator
        replay = FrequencyEstimator(dg, default_device(), seed=5)
        p1 = replay.estimate(plans, batch, num_walks=32)
        p2 = replay.estimate(plans, batch, num_walks=256)
        assert adaptive.nodes_visited == p1.nodes_visited + p2.nodes_visited
        assert adaptive.counters.compute_ops == (
            p1.counters.compute_ops + p2.counters.compute_ops
        )
        for ch in Channel:
            assert adaptive.counters.bytes_by_channel[ch] == (
                p1.counters.bytes_by_channel[ch] + p2.counters.bytes_by_channel[ch]
            )
            assert adaptive.counters.transactions_by_channel[ch] == (
                p1.counters.transactions_by_channel[ch]
                + p2.counters.transactions_by_channel[ch]
            )
        n = dg.num_vertices
        assert np.array_equal(
            adaptive.counters.vertex_access_counts(n),
            p1.counters.vertex_access_counts(n) + p2.counters.vertex_access_counts(n),
        )
        # and the merged frequencies are the walk-weighted average
        expected = (p1.frequencies * 32 + p2.frequencies * 256) / (32 + 256)
        assert np.allclose(adaptive.frequencies, expected)
