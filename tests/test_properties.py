"""Cross-cutting property-based tests (hypothesis).

These complement the per-module suites with randomized invariants that span
module boundaries: cache formats vs the store, pagers vs a reference model,
the executor vs the oracle on *generated* patterns, and conservation laws
of the counters.
"""

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dcsr import DcsrCache
from repro.core.matching import match_static
from repro.core.reference import count_embeddings
from repro.graphs import DynamicGraph, UpdateBatch
from repro.graphs.generators import erdos_renyi
from repro.graphs.stream import derive_stream
from repro.gpu import AccessCounters, Channel, DeviceConfig, HostCPUView, default_device
from repro.gpu.memory import UnifiedMemoryPager
from repro.query import compile_static_plan
from repro.query.generator import random_query


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_dcsr_equals_store_for_random_batches(seed):
    """Packing any subset of vertices must reproduce the store's OLD/NEW
    views exactly, deletion marks and all."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(6, 40))
    g = erdos_renyi(n, 4.0, seed=int(rng.integers(0, 2**31)))
    g0, batches = derive_stream(
        g, update_fraction=0.5, batch_size=max(1, int(rng.integers(1, 12))),
        seed=int(rng.integers(0, 2**31)),
    )
    dg = DynamicGraph(g0)
    dg.apply_batch(batches[0])
    k = int(rng.integers(0, n + 1))
    subset = rng.choice(n, size=k, replace=False) if k else np.empty(0, dtype=np.int64)
    cache = DcsrCache.build(dg, subset)
    for v in np.unique(subset).tolist():
        row = cache.lookup(int(v))
        assert row >= 0
        assert cache.neighbors_old(row).tolist() == dg.neighbors_old(v).tolist()
        cb, cd = cache.neighbors_new_parts(row)
        sb, sd = dg.neighbors_new_parts(v)
        assert cb.tolist() == sb.tolist() and cd.tolist() == sd.tolist()
    # vertices outside the subset always miss
    outside = np.setdiff1d(np.arange(n), subset)
    for v in outside[: min(5, outside.size)].tolist():
        assert cache.lookup(int(v)) == -1


class _ReferenceLru:
    """Independent, obviously-correct LRU model to check the pager against."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.pages: OrderedDict[int, None] = OrderedDict()

    def access(self, page: int) -> bool:
        hit = page in self.pages
        if hit:
            self.pages.move_to_end(page)
        else:
            self.pages[page] = None
            if len(self.pages) > self.capacity:
                self.pages.popitem(last=False)
        return hit


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=16),
    accesses=st.lists(st.integers(min_value=0, max_value=30), max_size=200),
)
def test_um_pager_matches_reference_lru(capacity, accesses):
    device = DeviceConfig(global_memory_bytes=4096 * capacity, um_cache_fraction=1.0)
    pager = UnifiedMemoryPager(device)
    ref = _ReferenceLru(capacity)
    for page in accesses:
        hits, faults = pager.access(range(page, page + 1))
        assert (hits == 1) == ref.access(page)
        assert hits + faults == 1
    assert pager.resident_pages == len(ref.pages)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_executor_matches_oracle_on_generated_patterns(seed):
    """Static matching with compiled plans equals brute force for *random*
    connected labeled patterns — not just the hand-picked test queries."""
    rng = np.random.default_rng(seed)
    query = random_query(
        int(rng.integers(2, 6)),
        num_labels=2 if rng.random() < 0.7 else None,
        density=float(rng.uniform(0, 0.8)),
        seed=int(rng.integers(0, 2**31)),
    )
    g = erdos_renyi(int(rng.integers(5, 30)), 3.5, num_labels=2,
                    seed=int(rng.integers(0, 2**31)))
    dg = DynamicGraph(g)
    view = HostCPUView(dg, default_device(), AccessCounters())
    stats = match_static(compile_static_plan(query), view)
    assert stats.signed_count == count_embeddings(g, query)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_counter_conservation(seed):
    """Bytes recorded per vertex must sum to the channel totals, and every
    access increments the histogram exactly once."""
    rng = np.random.default_rng(seed)
    g = erdos_renyi(int(rng.integers(10, 40)), 4.0, seed=int(rng.integers(0, 2**31)))
    g0, batches = derive_stream(g, update_fraction=0.4, batch_size=8,
                                seed=int(rng.integers(0, 2**31)))
    dg = DynamicGraph(g0)
    dg.apply_batch(batches[0])
    counters = AccessCounters()
    view = HostCPUView(dg, default_device(), counters)
    from repro.core.matching import match_batch
    from repro.query import compile_delta_plans
    from repro.query.pattern import QueryGraph

    match_batch(compile_delta_plans(QueryGraph(3, [(0, 1), (1, 2), (0, 2)])),
                batches[0], view)
    hist_bytes = int(counters._vertex_bytes.sum())
    assert hist_bytes == counters.bytes_by_channel[Channel.CPU_DRAM]
    assert counters.total_access_count == int(counters._vertex_counts.sum())


@pytest.mark.parametrize("executor", ["frontier", "recursive"])
@pytest.mark.parametrize("estimator", ["frontier", "recursive"])
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_adversarial_streams_are_total_and_oracle_exact(executor, estimator, seed):
    """Random adversarial streams (duplicates, phantoms, churn, double
    deletes, new-vertex bursts, flapping) run end-to-end through the full
    pipeline without error, every system's ΔM matches the brute-force
    oracle recount, and the store invariants hold after every reorganize —
    for both executors and both estimators."""
    from repro.core.validation import generate_adversarial_stream, verify_stream
    from repro.query.pattern import QueryGraph

    rng = np.random.default_rng(seed)
    g = erdos_renyi(int(rng.integers(20, 40)), 5.0, num_labels=2,
                    seed=int(rng.integers(0, 2**31)))
    batches = generate_adversarial_stream(
        g, num_batches=3, batch_size=max(4, int(rng.integers(4, 14))),
        seed=int(rng.integers(0, 2**31)),
    )
    query = QueryGraph(3, [(0, 1), (1, 2), (0, 2)])
    mode = "coalesce" if rng.random() < 0.7 else "ignore"
    report = verify_stream(
        ["GCSM", "CPU"], g, query, batches,
        against_oracle=True, seed=int(rng.integers(0, 2**31)),
        conflict_mode=mode, check_invariants=True,
        system_kwargs={"executor": executor, "estimator": estimator},
    )
    assert report.anomalies is not None
    assert report.anomalies.input_size == sum(len(b) for b in batches)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_views_agree_on_results_differ_only_in_channels(seed):
    """Any two views produce identical ΔM; only the traffic channel moves."""
    from repro.core.matching import match_batch
    from repro.gpu import UnifiedMemoryView, ZeroCopyView
    from repro.query import compile_delta_plans
    from repro.query.pattern import QueryGraph

    rng = np.random.default_rng(seed)
    g = erdos_renyi(int(rng.integers(10, 35)), 4.0, seed=int(rng.integers(0, 2**31)))
    g0, batches = derive_stream(g, update_fraction=0.4, batch_size=8,
                                seed=int(rng.integers(0, 2**31)))
    query = QueryGraph(3, [(0, 1), (1, 2), (0, 2)])
    plans = compile_delta_plans(query)
    results = {}
    channel_bytes = {}
    for name, cls, channel in (
        ("cpu", HostCPUView, Channel.CPU_DRAM),
        ("zc", ZeroCopyView, Channel.ZERO_COPY),
    ):
        dg = DynamicGraph(g0)
        dg.apply_batch(batches[0])
        counters = AccessCounters()
        stats = match_batch(plans, batches[0], cls(dg, default_device(), counters))
        results[name] = stats.signed_count
        channel_bytes[name] = counters.bytes_by_channel[channel]
        # nothing leaked onto the other channel
        other = Channel.ZERO_COPY if channel is Channel.CPU_DRAM else Channel.CPU_DRAM
        assert counters.bytes_by_channel[other] == 0
    assert results["cpu"] == results["zc"]
    assert channel_bytes["cpu"] == channel_bytes["zc"]  # same lists read
