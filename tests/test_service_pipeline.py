"""Pipelined execution: schedule math, COW store freeze, engine parity."""

import numpy as np
import pytest

from repro.core.engine import GCSMEngine
from repro.core.reference import count_embeddings
from repro.core.validation import generate_adversarial_stream
from repro.graphs.dynamic_graph import DynamicGraph, FrozenDynamicGraph
from repro.graphs.generators import erdos_renyi
from repro.graphs.stream import UpdateBatch, derive_stream
from repro.gpu.clock import (
    PIPELINE_STAGES,
    STAGE_RESOURCES,
    PipelineClock,
    TimeBreakdown,
)
from repro.multigpu.engine import MultiGpuEngine
from repro.query import QueryGraph
from repro.service import PipelinedEngine

TRIANGLE = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")


def bd(update=0.0, estimate=0.0, pack=0.0, match=0.0, reorg=0.0, comm=0.0):
    return TimeBreakdown(
        update_ns=update, estimate_ns=estimate, pack_ns=pack,
        match_ns=match, reorg_ns=reorg, comm_ns=comm,
    )


class TestTimeBreakdown:
    def test_pipelined_ns_falls_back_to_total_when_serial(self):
        b = bd(update=1.0, match=5.0, reorg=2.0)
        assert b.critical_path_ns == 0.0
        assert b.pipelined_ns == b.total_ns == 8.0
        assert b.overlap_ns == 0.0

    def test_pipelined_ns_is_critical_path_when_annotated(self):
        b = bd(update=1.0, match=5.0, reorg=2.0)
        b.critical_path_ns = 6.0
        assert b.pipelined_ns == 6.0
        assert b.overlap_ns == 2.0  # total 8 - critical 6

    def test_add_and_scaled_carry_pipeline_fields(self):
        a = bd(update=1.0, match=2.0)
        a.critical_path_ns, a.fill_ns, a.drain_ns = 2.5, 0.5, 0.25
        b = bd(estimate=3.0, reorg=4.0)
        b.critical_path_ns = 1.5
        s = a + b
        assert s.update_ns == 1.0 and s.estimate_ns == 3.0
        assert s.critical_path_ns == 4.0
        assert s.fill_ns == 0.5 and s.drain_ns == 0.25
        h = s.scaled(0.5)
        assert h.critical_path_ns == 2.0
        assert h.fill_ns == 0.25 and h.drain_ns == 0.125


class TestPipelineClockSchedule:
    def test_stage_resource_classes(self):
        assert STAGE_RESOURCES["match"] == "gpu"
        assert STAGE_RESOURCES["comm"] == "peer"
        for name in ("update", "prefilter", "estimate", "repartition", "pack",
                     "reorganize"):
            assert STAGE_RESOURCES[name] == "cpu"
        assert len(PIPELINE_STAGES) == 8

    def test_single_batch_has_no_overlap_benefit_beyond_reorg(self):
        # one batch: match overlaps only reorganize
        clock = PipelineClock()
        sched = clock.advance(bd(update=1, estimate=2, pack=3, match=10, reorg=4))
        # CPU lane contiguous
        assert sched.start_ns["update"] == 0.0
        assert sched.end_ns["pack"] == 6.0
        # match waits for pack, fill = full prep time
        assert sched.start_ns["match"] == 6.0
        assert sched.fill_ns == 6.0
        # reorganize does NOT wait for match (COW freeze isolation)
        assert sched.start_ns["reorganize"] == 6.0
        assert sched.end_ns["reorganize"] == 10.0
        assert sched.finish_ns == 16.0
        # drain = tail past the last CPU stage
        assert sched.drain_ns == 6.0
        assert clock.makespan_ns == 16.0
        assert clock.serial_ns == 20.0

    def test_gpu_bound_steady_state(self):
        # prep is cheap, match dominates: makespan -> prep0 + sum(match)
        clock = PipelineClock()
        for _ in range(5):
            clock.advance(bd(update=1, estimate=1, pack=1, match=100, reorg=1))
        assert clock.makespan_ns == pytest.approx(3 + 5 * 100)
        # fill bubble only from batch 0's prep
        assert clock.fill_ns == pytest.approx(3.0)
        report = clock.report()
        assert report.serial_ns == pytest.approx(5 * 104)
        assert report.speedup == pytest.approx(520.0 / 503.0)
        assert report.overlap_ns == pytest.approx(report.serial_ns - report.makespan_ns)

    def test_balanced_pipeline_approaches_2x(self):
        # CPU and GPU lanes equally loaded: overlap hides almost half the work
        clock = PipelineClock()
        for _ in range(5):
            clock.advance(bd(update=1, estimate=1, pack=1, match=4, reorg=1))
        assert clock.makespan_ns == pytest.approx(3 + 5 * 4)
        assert clock.report().speedup > 1.5

    def test_cpu_bound_steady_state_has_no_gpu_wait_except_fill(self):
        # prep dominates: the device always waits on prep (all fill, no win)
        clock = PipelineClock()
        for _ in range(4):
            clock.advance(bd(update=10, estimate=10, pack=10, match=1, reorg=10))
        # CPU lane is the makespan: 4 * 40
        assert clock.makespan_ns == pytest.approx(160.0)
        assert clock.report().speedup == pytest.approx(164.0 / 160.0)

    def test_critical_paths_sum_to_makespan(self):
        rng = np.random.default_rng(0)
        clock = PipelineClock()
        cps = []
        for _ in range(20):
            b = bd(*rng.uniform(0.0, 10.0, size=6))
            cps.append(clock.annotate(b).critical_path_ns)
            assert b.critical_path_ns == cps[-1]
            assert b.pipelined_ns == cps[-1] or cps[-1] == 0.0
        assert sum(cps) == pytest.approx(clock.makespan_ns)
        assert clock.makespan_ns <= clock.serial_ns

    def test_drain_is_last_batch_tail_not_accumulated(self):
        clock = PipelineClock()
        clock.advance(bd(pack=1, match=50, reorg=1))
        clock.advance(bd(pack=1, match=50, reorg=1))
        # stream drain equals the *last* batch's tail, not the sum of tails
        last_tail = clock.gpu_ns - clock.cpu_ns
        assert clock.drain_ns == pytest.approx(last_tail)

    def test_comm_follows_match_on_peer_lane(self):
        clock = PipelineClock()
        s = clock.advance(bd(pack=1, match=5, comm=3))
        assert s.start_ns["comm"] == s.end_ns["match"]
        assert s.finish_ns == s.end_ns["comm"]


def make_store(seed=0):
    g = erdos_renyi(30, 5.0, num_labels=2, seed=seed)
    return DynamicGraph(g)


class TestFreeze:
    def test_frozen_view_preserves_epoch_across_mutation(self):
        store = make_store()
        before = store.snapshot()
        frozen = store.freeze()
        assert isinstance(frozen, FrozenDynamicGraph)
        # mutate the live store: apply + reorganize
        batch = store.apply_batch(
            UpdateBatch([(0, 2), (1, 4), (3, 7)], [1, 1, 1]), mode="coalesce"
        )
        assert len(batch) >= 1
        store.reorganize()
        # the view still reads the captured epoch
        view_snap = frozen.snapshot()
        assert np.array_equal(view_snap.labels, before.labels)
        assert sorted(map(tuple, view_snap.edge_array())) == \
            sorted(map(tuple, before.edge_array()))
        frozen.release()

    def test_frozen_view_mutators_blocked(self):
        store = make_store()
        with store.freeze() as frozen:
            with pytest.raises(ValueError, match="immutable"):
                frozen.apply_batch(UpdateBatch([(0, 1)], [1]))
            with pytest.raises(ValueError, match="immutable"):
                frozen.reorganize()
            with pytest.raises(ValueError, match="freeze"):
                frozen.freeze()
        assert frozen.released

    def test_release_is_idempotent_and_context_managed(self):
        store = make_store()
        frozen = store.freeze()
        assert store._active_freezes == 1
        frozen.release()
        frozen.release()  # idempotent
        assert store._active_freezes == 0
        with pytest.raises(ValueError):
            store._release_freeze()  # no active freeze

    def test_new_vertex_growth_does_not_leak_into_view(self):
        store = make_store()
        n0 = store.num_vertices
        with store.freeze() as frozen:
            store.apply_batch(UpdateBatch(
                [(0, n0), (n0, n0 + 1)], [1, 1],
                new_vertex_labels={n0: 0, n0 + 1: 1},
            ), mode="coalesce")
            assert store.num_vertices == n0 + 2
            assert frozen.num_vertices == n0

    def test_stacked_freezes(self):
        store = make_store()
        f1 = store.freeze()
        store.apply_batch(UpdateBatch([(0, 3)], [1]), mode="coalesce")
        store.reorganize()
        f2 = store.freeze()
        store.apply_batch(UpdateBatch([(1, 5)], [1]), mode="coalesce")
        store.reorganize()
        e1 = sorted(map(tuple, f1.snapshot().edge_array()))
        e2 = sorted(map(tuple, f2.snapshot().edge_array()))
        assert e1 != e2  # distinct epochs
        f1.release()
        f2.release()
        assert store._active_freezes == 0
        store.check_invariants()


def parity_workload(seed=0, num_batches=4):
    g = erdos_renyi(36, 6.0, num_labels=2, seed=seed)
    batches = generate_adversarial_stream(
        g, num_batches=num_batches, batch_size=12, seed=seed + 1
    )
    return g, batches


def assert_results_equal(a, b):
    assert a.delta_count == b.delta_count
    assert a.match_stats == b.match_stats
    assert a.match_counters.summary() == b.match_counters.summary()
    assert np.array_equal(a.cached_vertices, b.cached_vertices)
    assert a.cache_bytes == b.cache_bytes
    assert (a.cache_hits, a.cache_misses) == (b.cache_hits, b.cache_misses)
    # every serial stage time equal; only the pipeline fields may differ
    for f in ("update_ns", "estimate_ns", "pack_ns", "match_ns",
              "reorg_ns", "comm_ns"):
        assert getattr(a.breakdown, f) == getattr(b.breakdown, f)


class TestEngineParity:
    @pytest.mark.parametrize("threaded", [True, False], ids=["threaded", "inline"])
    def test_stream_bit_parity_with_serial_engine(self, threaded):
        g, batches = parity_workload(seed=11)
        serial = GCSMEngine(g, TRIANGLE, seed=3)
        piped = PipelinedEngine(g, TRIANGLE, seed=3, threaded=threaded)
        ser = [serial.process_batch(b) for b in batches]
        pip = piped.process_stream(batches)
        for a, b in zip(ser, pip):
            assert_results_equal(a, b)
            assert a.breakdown.critical_path_ns == 0.0  # serial: never annotated
            assert b.breakdown.critical_path_ns > 0.0
        # identical final stores
        sa, sb = serial.snapshot(), piped.snapshot()
        assert np.array_equal(sa.labels, sb.labels)
        assert sorted(map(tuple, sa.edge_array())) == \
            sorted(map(tuple, sb.edge_array()))
        piped.graph.check_invariants()

    def test_per_batch_entrypoint_matches_stream_entrypoint(self):
        g, batches = parity_workload(seed=12)
        a = PipelinedEngine(g, TRIANGLE, seed=5)
        b = PipelinedEngine(g, TRIANGLE, seed=5)
        ra = [a.process_batch(x) for x in batches]
        rb = b.process_stream(batches)
        for x, y in zip(ra, rb):
            assert_results_equal(x, y)

    def test_overlap_is_real_and_critical_paths_sum_to_makespan(self):
        g, batches = parity_workload(seed=13, num_batches=5)
        piped = PipelinedEngine(g, TRIANGLE, seed=7)
        results = piped.process_stream(batches)
        report = piped.schedule_report()
        assert report.num_batches == len(batches)
        assert report.makespan_ns < report.serial_ns  # nonzero overlap
        assert report.overlap_ns > 0.0
        assert report.speedup > 1.0
        total_cp = sum(r.breakdown.critical_path_ns for r in results)
        assert total_cp == pytest.approx(report.makespan_ns, rel=1e-9)
        serial_total = sum(r.breakdown.total_ns for r in results)
        assert serial_total == pytest.approx(report.serial_ns, rel=1e-9)

    def test_delta_counts_match_oracle_through_pipeline(self):
        g = erdos_renyi(40, 5.0, num_labels=2, seed=21)
        g0, batches = derive_stream(g, update_fraction=0.4, batch_size=16, seed=21)
        piped = PipelinedEngine(g0, TRIANGLE, seed=2)
        prev = count_embeddings(g0, TRIANGLE)
        for result in piped.process_stream(batches[:4]):
            prev += result.delta_count
        assert prev == count_embeddings(piped.snapshot(), TRIANGLE)

    def test_engine_name_registered(self):
        from repro.core.baselines import SYSTEM_NAMES, make_system

        assert "Pipelined" in SYSTEM_NAMES
        g, _ = parity_workload()
        system = make_system("Pipelined", g, TRIANGLE, seed=0)
        assert isinstance(system, PipelinedEngine)
        assert system.name == "Pipelined"

    def test_empty_batch_rejected(self):
        g, _ = parity_workload()
        piped = PipelinedEngine(g, TRIANGLE)
        with pytest.raises(ValueError):
            piped.process_batch(UpdateBatch(np.empty((0, 2)), np.empty(0)))


class TestMultiGpuPipeline:
    def test_pipeline_flag_annotates_breakdowns(self):
        g, batches = parity_workload(seed=31)
        plain = MultiGpuEngine(g, TRIANGLE, devices=2, seed=1)
        piped = MultiGpuEngine(g, TRIANGLE, devices=2, seed=1, pipeline=True)
        for b in batches[:3]:
            rp = plain.process_batch(b)
            rq = piped.process_batch(b)
            assert rp.delta_count == rq.delta_count
            assert rp.breakdown.critical_path_ns == 0.0
            assert rq.breakdown.critical_path_ns > 0.0
            assert rq.breakdown.pipelined_ns <= rq.breakdown.total_ns
        report = piped.schedule_report()
        assert report.num_batches == 3
        assert report.makespan_ns <= report.serial_ns

    def test_schedule_report_requires_pipeline_flag(self):
        g, _ = parity_workload()
        plain = MultiGpuEngine(g, TRIANGLE, devices=2, seed=1)
        with pytest.raises(ValueError):
            plain.schedule_report()
