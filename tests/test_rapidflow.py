"""Tests for the RapidFlow-style CPU baseline (paper Fig. 14)."""

import numpy as np
import pytest

from repro.core.rapidflow import (
    IndexMemoryError,
    RapidFlowSystem,
    candidate_index_bytes,
)
from repro.core.reference import count_embeddings
from repro.graphs.generators import erdos_renyi, powerlaw_graph
from repro.graphs.stream import derive_stream
from repro.query import QueryGraph

TRIANGLE = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")
TAILED = QueryGraph(4, [(0, 1), (1, 2), (0, 2), (2, 3)], [0, 0, 1, 1], name="tailed")


class TestCandidateIndex:
    def test_candidates_filtered_by_label_and_degree(self):
        g = erdos_renyi(60, 5.0, num_labels=2, seed=1)
        sys = RapidFlowSystem(g, TAILED)
        degrees = sys.graph.degrees_new()
        labels = sys.graph.labels
        for u in range(TAILED.num_vertices):
            cand = sys.candidates[u]
            assert bool(np.all(degrees[cand] >= TAILED.degree(u)))
            assert bool(np.all(labels[cand] == TAILED.label(u)))

    def test_index_bytes_positive_and_grows_with_graph(self):
        small = RapidFlowSystem(erdos_renyi(40, 4.0, seed=2), TRIANGLE)
        big = RapidFlowSystem(erdos_renyi(400, 4.0, seed=2), TRIANGLE)
        assert 0 < small.index_bytes < big.index_bytes

    def test_oom_on_large_graph(self):
        """The paper's Sec. VI-C observation: index exhausts memory on the
        large graphs, so Fig. 14 only covers AZ and LJ."""
        g = powerlaw_graph(5000, 20.0, max_degree=300, num_labels=1, seed=3)
        with pytest.raises(IndexMemoryError):
            RapidFlowSystem(g, TRIANGLE, memory_budget_bytes=100_000)

    def test_oom_during_maintenance(self):
        g = erdos_renyi(100, 4.0, num_labels=1, seed=4)
        g0, batches = derive_stream(g, update_fraction=0.5, batch_size=50, seed=4)
        sys = RapidFlowSystem(g0, TRIANGLE)
        # shrink the budget well below the index size after construction
        sys.memory_budget_bytes = sys.index_bytes // 2
        with pytest.raises(IndexMemoryError):
            sys.process_batch(batches[0])


class TestCorrectness:
    @pytest.mark.parametrize("query", [TRIANGLE, TAILED], ids=lambda q: q.name)
    def test_stream_matches_oracle(self, query):
        g = erdos_renyi(50, 5.0, num_labels=2, seed=5)
        g0, batches = derive_stream(g, update_fraction=0.4, batch_size=12, seed=5)
        sys = RapidFlowSystem(g0, query)
        prev = count_embeddings(g0, query)
        for batch in batches[:4]:
            r = sys.process_batch(batch)
            now = count_embeddings(sys.snapshot(), query)
            assert r.delta_count == now - prev
            prev = now

    def test_index_maintained_across_batches(self):
        g = erdos_renyi(60, 5.0, num_labels=2, seed=6)
        g0, batches = derive_stream(g, update_fraction=0.5, batch_size=20, seed=6)
        sys = RapidFlowSystem(g0, TAILED)
        for batch in batches[:3]:
            sys.process_batch(batch)
        # post-hoc: candidates still consistent with the settled graph
        degrees = sys.graph.degrees_new()
        labels = sys.graph.labels
        for u in range(TAILED.num_vertices):
            cand = sys.candidates[u]
            assert bool(np.all(labels[cand] == TAILED.label(u)))
            # union-degree maintenance may retain slightly stale entries but
            # must never *miss* a valid candidate (soundness)
            valid = np.nonzero(
                (degrees >= TAILED.degree(u)) & (labels == TAILED.label(u))
            )[0]
            assert set(valid.tolist()) <= set(cand.tolist())


class TestOrderOptimization:
    def test_orders_bind_scarce_vertices_early(self):
        # make label 1 very rare -> query vertices labeled 1 have small C(u)
        labels = np.zeros(60, dtype=np.int64)
        labels[:3] = 1
        g = erdos_renyi(60, 6.0, num_labels=1, seed=7)
        from repro.graphs import StaticGraph

        g = StaticGraph(g.indptr, g.indices, labels)
        query = QueryGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)], [0, 0, 0, 1])
        sys = RapidFlowSystem(g, query)
        assert sys.candidates[3].size < sys.candidates[0].size
        for plan in sys.plans:
            order = plan.order
            # vertex 3 (scarce) appears as early as connectivity permits:
            # never later than any equally-connectable abundant vertex chosen
            # at its selection point; weak but meaningful check: it is not
            # always last unless it is a root-edge constraint issue
            if 3 not in plan.root_edge:
                assert order.index(3) <= len(order) - 1
        # at least one plan binds the scarce vertex before position 3
        assert any(p.order.index(3) < 3 for p in sys.plans if 3 not in p.root_edge)

    def test_plans_cover_all_edges(self):
        g = erdos_renyi(50, 5.0, num_labels=2, seed=8)
        sys = RapidFlowSystem(g, TAILED)
        assert len(sys.plans) == TAILED.num_edges
        for i, plan in enumerate(sys.plans):
            covered = [c.edge_index for lvl in plan.levels for c in lvl.constraints]
            covered.append(plan.root_edge_index)
            assert sorted(covered) == list(range(TAILED.num_edges))
            assert plan.delta_index == i
